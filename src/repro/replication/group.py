"""Per-shard replica groups: replicated serving, failover, fault surface.

A :class:`ReplicaGroup` turns one shard of a
:class:`~repro.cluster.QuaestorCluster` into ``replication_factor`` copies: a
primary carrying the full :class:`~repro.core.QuaestorServer` stack and
``replication_factor - 1`` :class:`~repro.replication.replica.ReplicaNode`
databases fed by asynchronous log shipping
(:mod:`repro.replication.log_shipping`).

Read routing honours the paper's consistency levels
(:mod:`repro.core.consistency`):

* **STRONG** always routes to the primary (a replica cannot linearize).
* **DELTA_ATOMIC** round-robins across the primary and every live replica;
  replica lag is bounded staleness, which Delta-atomicity already budgets
  for (the staleness auditor measures it like any other stale read).
* **CAUSAL** may use a replica only when the replica's apply watermark has
  caught up to the session's causal frontier; otherwise the read falls back
  to the primary.

Two middleware structures are deliberately modelled as *surviving* a primary
crash: the Expiring Bloom Filter and the TTL estimator.  The paper keeps the
coherence bookkeeping (active list and friends) in a shared Redis tier, not
on the Quaestor process itself -- losing the EBF on failover would make
caches serve invalidated entries as fresh, a fail-incorrect outcome.  What
*is* lost on a crash is the primary's unshipped log suffix (asynchronous
replication's loss window) and its InvaliDB registrations; the group flags
the lost keys stale in the surviving filter (fail-stale) and the cluster
re-registers queries on the promoted server.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.clock import Clock
from repro.core.consistency import ConsistencyLevel
from repro.core.read_path import render_record_read
from repro.db.changestream import ChangeEvent, OperationType
from repro.db.database import Database
from repro.db.query import record_key
from repro.errors import (
    CollectionNotFoundError,
    DocumentNotFoundError,
    ShardUnavailableError,
)
from repro.metrics.counters import Counter
from repro.replication.config import ReplicationConfig
from repro.replication.log_shipping import LogRecord
from repro.replication.replica import ReplicaNode
from repro.rest.messages import Response, StatusCode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports nothing of us)
    from repro.bloom.expiring import ExpiringBloomFilter
    from repro.core.server import QuaestorServer
    from repro.ttl.base import TTLEstimator

#: Builds a fresh primary server on a promoted replica's database.  The
#: Expiring Bloom Filter and TTL estimator are handed through so the
#: coherence state survives the failover (see the module docstring).
ServerFactory = Callable[[Database, "ExpiringBloomFilter", "TTLEstimator"], "QuaestorServer"]


class ReplicaGroup:
    """A primary Quaestor server plus asynchronously shipped replicas."""

    def __init__(
        self,
        shard_id: int,
        database: Database,
        server: "QuaestorServer",
        server_factory: ServerFactory,
        clock: Clock,
        config: Optional[ReplicationConfig] = None,
    ) -> None:
        self.shard_id = shard_id
        self.clock = clock
        self.config = config if config is not None else ReplicationConfig()
        self.server_factory = server_factory
        self.counters = Counter()

        # Coherence-tier state that survives primary failover.
        self.ebf = server.ebf
        self.ttl_estimator = server.ttl_estimator

        primary = ReplicaNode(self._node_id(0), clock, database=database)
        primary.applied_sequence = database.change_stream.last_sequence
        primary.applied_timestamp = clock.now()
        self.nodes: List[ReplicaNode] = [primary]
        for index in range(1, self.config.replication_factor):
            node = ReplicaNode(self._node_id(index), clock)
            node.seed_from(
                database,
                upto_sequence=database.change_stream.last_sequence,
                upto_timestamp=clock.now(),
            )
            self.nodes.append(node)

        self._server: "QuaestorServer" = server
        self._primary_index = 0
        self._read_rr = 0
        self._partitions: Set[frozenset] = set()
        self.last_served_node_id = primary.node_id
        #: Promotion epoch: bumped on every primary change; candidate
        #: freshness is compared as (epoch, applied_sequence) because
        #: sequence numbers restart with each primary's change stream.
        self._epoch = 0
        #: Every collection this shard has ever materialised; a promoted
        #: database is topped up from this set so scatter queries never hit
        #: a missing collection on a node that was down when it was created.
        self._known_collections: Set[str] = set(database.collection_names())
        #: Cached serving-node id list (simulator capacity accounting);
        #: invalidated on any membership change.
        self._serving_ids: Optional[List[str]] = None
        #: Promotion history: one record per completed failover.
        self.promotions: List[Dict[str, object]] = []
        #: Optional per-replica circuit-breaker gate installed by the
        #: cluster's resilience layer: ``gate(node_id) -> bool`` (may this
        #: replica take traffic?).  ``None`` -- the default, and the only
        #: state a deployment without resilience ever sees -- changes
        #: nothing about candidate selection.
        self.breaker_gate: Optional[Callable[[str], bool]] = None
        self._unsubscribe = database.subscribe(self._ship)

    def _node_id(self, index: int) -> str:
        return f"s{self.shard_id}:n{index}"

    # -- membership / introspection ------------------------------------------------------

    @property
    def primary_node(self) -> ReplicaNode:
        return self.nodes[self._primary_index]

    @property
    def primary_node_id(self) -> str:
        return self.primary_node.node_id

    @property
    def primary_alive(self) -> bool:
        return self.primary_node.alive

    @property
    def server(self) -> "QuaestorServer":
        """The current primary's Quaestor server (changes on failover)."""
        return self._server

    @property
    def database(self) -> Database:
        return self.primary_node.database

    def node(self, node_id: str) -> ReplicaNode:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise KeyError(f"no node {node_id!r} in replica group of shard {self.shard_id}")

    def replica_nodes(self) -> List[ReplicaNode]:
        return [
            node
            for index, node in enumerate(self.nodes)
            if index != self._primary_index
        ]

    def alive_replicas(self) -> List[ReplicaNode]:
        return [node for node in self.replica_nodes() if node.alive]

    def serving_node_ids(self) -> List[str]:
        """Nodes currently able to serve Delta-atomic record reads.

        Used by the simulator's capacity accounting to spread anonymous
        member-record fetches over the nodes the read rotation actually
        uses.  Falls back to the primary id when nothing is alive (the
        request errors anyway; the token is never charged).  Cached --
        membership changes are rare, this is queried per simulated fetch.
        """
        if self._serving_ids is None:
            ids = [self.primary_node_id] if self.primary_alive else []
            ids.extend(node.node_id for node in self.alive_replicas())
            self._serving_ids = ids if ids else [self.primary_node_id]
        return self._serving_ids

    def status(self) -> Dict[str, object]:
        """Point-in-time group status (examples, metrics, debugging)."""
        return {
            "shard_id": self.shard_id,
            "primary": self.primary_node_id,
            "primary_alive": self.primary_alive,
            "replication_factor": self.config.replication_factor,
            "nodes": [
                {
                    "node_id": node.node_id,
                    "alive": node.alive,
                    "role": "primary" if index == self._primary_index else "replica",
                    "applied_sequence": node.applied_sequence,
                    "backlog": node.lag_records,
                }
                for index, node in enumerate(self.nodes)
            ],
            "promotions": len(self.promotions),
        }

    # -- log shipping --------------------------------------------------------------------

    def _ship(self, event: ChangeEvent) -> None:
        """Fan one acknowledged primary write out to every live replica."""
        replicas = [
            node
            for index, node in enumerate(self.nodes)
            if index != self._primary_index and node.alive
        ]
        if not replicas:
            return
        version = 0
        if event.operation is not OperationType.DELETE:
            try:
                version = self.database.collection(event.collection).version(event.document_id)
            except (CollectionNotFoundError, DocumentNotFoundError):
                version = 0
        for node in replicas:
            # One lag draw per (event, replica), in node order: deterministic
            # under a fixed seed, and independent streams per topology model.
            lag = self.config.lag.sample()
            node.link.ship(LogRecord(event, version, event.timestamp + lag))

    # -- read routing --------------------------------------------------------------------

    def read(
        self,
        collection: str,
        document_id: str,
        consistency: Optional[ConsistencyLevel] = None,
        min_timestamp: Optional[float] = None,
    ) -> Response:
        """Serve a record read at the requested consistency level.

        ``min_timestamp`` is the session's causal frontier (the primary-side
        timestamp of the newest state the session has observed or written);
        it gates which replicas a CAUSAL read may use.  Raises
        :class:`~repro.errors.ShardUnavailableError` when no node can serve
        the request at the requested level.
        """
        if len(self.nodes) == 1:
            # RF=1 fast path: every level routes to the sole primary.  No
            # candidate lists, no level coercion -- the record-read hot path
            # of an unreplicated cluster stays as lean as before this layer.
            if not self.primary_node.alive:
                self.counters.increment("unavailable_reads")
                raise ShardUnavailableError(
                    f"shard {self.shard_id}: primary down and unreplicated"
                )
            return self._primary_read(collection, document_id)
        now = self.clock.now()
        level = self._coerce_level(consistency)

        if level.always_revalidates:
            # STRONG: only the primary can linearize.
            if not self.primary_alive:
                self.counters.increment("unavailable_reads")
                raise ShardUnavailableError(
                    f"shard {self.shard_id}: primary down, strong read cannot be served"
                )
            return self._primary_read(collection, document_id)

        candidates: List[Tuple[ReplicaNode, bool]] = []
        stale_candidates: List[Tuple[ReplicaNode, bool]] = []
        if self.primary_alive:
            candidates.append((self.primary_node, True))
        for node in self.replica_nodes():
            if not node.alive:
                continue
            node.deliver_until(now)
            if self.breaker_gate is not None and not self.breaker_gate(node.node_id):
                # The resilience layer's per-replica breaker is open for this
                # node (e.g. it has been dropping acks): route around it.
                self.counters.increment("breaker_skipped_replicas")
                continue
            if level is ConsistencyLevel.CAUSAL and not node.caught_up_to(min_timestamp):
                self.counters.increment("causal_replica_skips")
                continue
            if node.staleness_at(now) > self.config.max_replica_staleness:
                # Beyond the Delta budget (partitioned or deeply backlogged):
                # not eligible while fresher nodes exist, but kept as the
                # fail-stale last resort when the primary is down.
                self.counters.increment("stale_replica_skips")
                stale_candidates.append((node, False))
                continue
            candidates.append((node, False))
        if not candidates:
            # Fail-stale availability beats refusing entirely: during an
            # outage an over-bound replica may still answer (the staleness
            # auditor measures exactly this window).
            candidates = stale_candidates
        if not candidates:
            self.counters.increment("unavailable_reads")
            raise ShardUnavailableError(
                f"shard {self.shard_id}: no node can serve a {level.value} read"
            )

        node, is_primary = candidates[self._read_rr % len(candidates)]
        self._read_rr += 1
        tracer = getattr(self._server, "tracer", None)
        if tracer is not None:
            tracer.event(
                "replica.select",
                node=node.node_id,
                candidates=len(candidates),
                level=level.value,
            )
        if is_primary:
            return self._primary_read(collection, document_id)
        return self._replica_read(node, collection, document_id, now)

    @staticmethod
    def _coerce_level(consistency: Optional[ConsistencyLevel]) -> ConsistencyLevel:
        if consistency is None:
            return ConsistencyLevel.DELTA_ATOMIC
        if isinstance(consistency, ConsistencyLevel):
            return consistency
        return ConsistencyLevel(consistency)

    def _primary_read(self, collection: str, document_id: str) -> Response:
        self.counters.increment("primary_reads")
        self.last_served_node_id = self.primary_node_id
        return self._server.handle_read(collection, document_id)

    def _replica_read(
        self, node: ReplicaNode, collection: str, document_id: str, now: float
    ) -> Response:
        """Serve a record from a replica's (possibly lagging) database.

        Mirrors the primary's record-read pipeline -- same body shape, ETag,
        TTL estimate and EBF read report -- except that the staleness auditor
        is *not* fed: replica state is not authoritative, and the audit's job
        is precisely to measure how stale these reads get.
        """
        self.last_served_node_id = node.node_id
        try:
            document = node.database.get(collection, document_id)
            version = node.database.collection(collection).version(document_id)
        except (CollectionNotFoundError, DocumentNotFoundError):
            # The replica has not applied the insert yet.  A lagging *value*
            # is bounded staleness, but a 404 for an acknowledged document
            # would break read-your-writes (the session's own insert must be
            # visible), so the miss falls back to the primary whenever it is
            # alive; only during an outage does it degrade to a bounded-stale
            # 404.
            self.counters.increment("replica_read_misses")
            if self.primary_alive:
                return self._primary_read(collection, document_id)
            return Response.uncacheable(None, status=StatusCode.NOT_FOUND)
        self.counters.increment("replica_reads")
        return render_record_read(
            collection,
            document_id,
            document,
            version,
            now,
            config=self._server.config,
            ttl_estimator=self.ttl_estimator,
            ebf=self.ebf,
        )

    # -- write-path helpers --------------------------------------------------------------

    def ensure_collection(self, name: str) -> None:
        """Materialise ``name`` on the primary and every live replica.

        The cluster materialises collections fleet-wide on insert; replicas
        must mirror that so a promoted replica can serve scatter queries for
        collections that were created but never written on this shard.  The
        name is also remembered so a node that was *down* at creation time
        is topped up if it ever resumes service as primary.
        """
        self._known_collections.add(name)
        self.database.create_collection(name)
        for node in self.alive_replicas():
            node.database.create_collection(name)

    # -- fault surface -------------------------------------------------------------------

    def crash(self, node_id: str) -> bool:
        """Crash ``node_id``; returns whether the group lost its primary."""
        node = self.node(node_id)
        if not node.alive:
            return False
        # Delivery is lazy, so first materialise everything that had already
        # *arrived* by now -- the node's durable state at the moment it dies.
        # Whatever stays pending was genuinely in flight and is lost with
        # the crash (flagged stale if this node ever resumes service).
        node.deliver_until(self.clock.now())
        node.alive = False
        # While dead the node receives no ship fan-out: from here on an
        # empty link no longer proves it is caught up (until the next seed).
        node.link_sound = False
        self._serving_ids = None
        self.counters.increment("crashes")
        if node is self.primary_node:
            # The process is gone: no more change-stream processing, no more
            # log shipping.  (The persistent EBF/TTL state lives in the
            # shared coherence tier and is untouched.)
            self._unsubscribe()
            self._server.close()
            return True
        return False

    def promote(self, now: Optional[float] = None) -> Optional[Dict[str, object]]:
        """Fail over: promote the freshest live replica to primary.

        Every live replica first applies all log records that reached it;
        the one with the highest applied sequence wins (ties break to the
        lowest node index -- deterministic).  Records still in flight to the
        winner are the asynchronous loss window: their keys are flagged stale
        in the surviving EBF so no cache keeps trusting data the new primary
        never had (fail-stale).  Surviving replicas are snapshot-realigned to
        the new primary, whose change stream becomes the new shipping source.

        Returns a promotion record, or ``None`` when the primary is alive or
        no replica survived (total shard outage).
        """
        if self.primary_alive:
            return None
        timestamp = self.clock.now() if now is None else now
        live = [
            (index, node)
            for index, node in enumerate(self.nodes)
            if node.alive and index != self._primary_index
        ]
        for _index, node in live:
            node.deliver_until(timestamp)
        if not live:
            return None
        # Freshness is (epoch, sequence): sequence numbers restart with each
        # primary's change stream, so a node that rejoined with old-epoch
        # state can never outrank a current-epoch survivor on raw sequence.
        best_index, best = min(
            live,
            key=lambda item: (-item[1].epoch, -item[1].applied_sequence, item[0]),
        )

        # The loss window is everything the deposed primary acknowledged
        # that the winner never applied -- derived from the primary's own
        # change stream, not from the winner's link: records held up on a
        # *partitioned peer's* link, or written while the winner was
        # crashed, would otherwise be lost silently with no fail-stale
        # flag.  For a winner from an older epoch the whole retained stream
        # counts (its sequence is not comparable).  The retained history is
        # bounded, so when it cannot prove completeness for the gap, every
        # document the deposed primary held is absorbed conservatively.
        deposed = self.primary_node
        best.link.clear()
        since = best.applied_sequence if best.epoch == self._epoch else 0
        stream = deposed.database.change_stream
        if stream.covers_since(since):
            lost_events = stream.replay_since(since)
            self._absorb_lost_events(best, lost_events, deposed.database, timestamp)
            lost_count = len(lost_events)
        else:
            self._absorb_full_database(best, deposed.database, timestamp)
            lost_count = stream.last_sequence - since

        previous = deposed.node_id
        self._primary_index = best_index
        self._install_server(best, timestamp)

        # Surviving replicas may have applied past (or diverged from) the new
        # primary's state; realign them with a snapshot resync.
        upto = best.database.change_stream.last_sequence
        for index, node in enumerate(self.nodes):
            if index == best_index or not node.alive:
                continue
            node.seed_from(best.database, upto_sequence=upto, upto_timestamp=timestamp)
            node.epoch = self._epoch
        self._apply_partitions()

        info: Dict[str, object] = {
            "shard_id": self.shard_id,
            "node_id": best.node_id,
            "previous_primary": previous,
            "at": timestamp,
            "lost_records": lost_count,
        }
        self.promotions.append(info)
        self.counters.increment("promotions")
        return info

    def recover(self, node_id: str, now: Optional[float] = None) -> str:
        """Bring a crashed node back.

        With a live primary the node rejoins as a replica via snapshot
        resync (its pre-crash state is discarded -- it may have diverged).
        A node rejoining a primary-*less* group that still has live replicas
        becomes a promotion candidate like them (its retained data competes
        on freshness; the pending failover -- or the cluster -- promotes the
        freshest).  Only when no other node is alive does the recovered node
        resume service as primary from the cluster's surviving durable
        state; the caller (cluster) is expected to rebuild query
        registrations, exactly as after a promotion.

        Returns ``"replica"``, ``"primary"`` (service restored), or
        ``"noop"`` when the node was already alive.
        """
        node = self.node(node_id)
        if node.alive:
            return "noop"
        timestamp = self.clock.now() if now is None else now
        node.alive = True
        self._serving_ids = None
        self.counters.increment("recoveries")
        if self.primary_alive and node is not self.primary_node:
            node.seed_from(
                self.database,
                upto_sequence=self.database.change_stream.last_sequence,
                upto_timestamp=timestamp,
            )
            node.epoch = self._epoch
            self._apply_partitions()
            return "replica"
        if not self.primary_alive and node is not self.primary_node and any(
            other.alive and other is not node for other in self.replica_nodes()
        ):
            # Primary-less but not alone: rejoin as a promotion candidate
            # with retained (old-epoch) data; promote() compares epochs, so
            # it only wins against candidates at least as stale.
            self._apply_partitions()
            return "replica"
        # Total outage: service resumes on the recovered node.  The node
        # restores from the cluster's *freshest durable state* -- the last
        # serving primary's disk -- not merely its own copy: resuming from a
        # stale replica disk would silently roll back writes the promoted-era
        # primary acknowledged AND re-issue their version numbers to new
        # content, aliasing ETags (a conditional revalidation would 304 the
        # wrong body -- fail-incorrect, which this layer never permits).
        previous = self.primary_node
        if node is not previous:
            node.seed_from(
                previous.database,
                upto_sequence=previous.database.change_stream.last_sequence,
                upto_timestamp=timestamp,
            )
        else:
            # The last primary itself came back.  Its durable state was
            # materialised at crash time (crash() delivers everything that
            # had arrived); records still pending were in flight when it
            # died and are lost -- absorbed like a promotion's loss window.
            lost = node.link.pending_records()
            node.link.clear()
            self._absorb_lost_records(node, lost, timestamp)
        self._primary_index = self.nodes.index(node)
        self._install_server(node, timestamp)
        self._apply_partitions()
        return "primary"

    def _install_server(self, node: ReplicaNode, timestamp: float) -> None:
        """Make ``node`` the serving primary: new epoch, server, shipping.

        The database is first topped up with every collection the shard has
        ever materialised (the node may have been down when one was created;
        a scatter query hitting a missing collection would raise instead of
        degrading).
        """
        for name in self._known_collections:
            node.database.create_collection(name)
        self._epoch += 1
        node.epoch = self._epoch
        self._server = self.server_factory(node.database, self.ebf, self.ttl_estimator)
        self._unsubscribe = node.database.subscribe(self._ship)
        self._serving_ids = None

    def _absorb_lost_records(
        self, node: ReplicaNode, lost: List[LogRecord], timestamp: float
    ) -> None:
        """Absorb a link backlog the resuming node never applied (fail-stale).

        Same obligations as :meth:`_absorb_lost_events`, with the
        authoritative versions taken from the shipped records themselves
        (the shipping-era primary's database may not survive to be read).
        """
        for record in lost:
            event = record.event
            self.ebf.report_invalidation(
                record_key(event.collection, event.document_id), timestamp
            )
            if record.version > 0:
                node.database.create_collection(event.collection).restore_version_floors(
                    {event.document_id: record.version}
                )

    def _absorb_lost_events(
        self,
        node: ReplicaNode,
        lost_events: List[ChangeEvent],
        source: Database,
        timestamp: float,
    ) -> None:
        """Account for acknowledged writes a new primary never applied.

        Two obligations per lost document: flag its key stale in the
        surviving coherence filter (caches must revalidate rather than trust
        state the new primary never had), and raise its version floor past
        the highest version the deposed primary issued (read from
        ``source``, the deposed primary's database) -- otherwise the next
        write would re-assign that version number to different content, and
        the version-keyed ETags/caches would alias two bodies
        (fail-incorrect).
        """
        floors_by_collection: Dict[str, Dict[str, int]] = {}
        seen: Set[Tuple[str, str]] = set()
        for event in lost_events:
            identity = (event.collection, event.document_id)
            if identity in seen:
                continue
            seen.add(identity)
            self.ebf.report_invalidation(
                record_key(event.collection, event.document_id), timestamp
            )
            floors = floors_by_collection.get(event.collection)
            if floors is None:
                try:
                    floors = source.collection(event.collection).version_floors()
                except CollectionNotFoundError:
                    floors = {}
                floors_by_collection[event.collection] = floors
            final_version = floors.get(event.document_id, 0)
            if final_version > 0:
                node.database.create_collection(event.collection).restore_version_floors(
                    {event.document_id: final_version}
                )

    def _absorb_full_database(
        self, node: ReplicaNode, source: Database, timestamp: float
    ) -> None:
        """Conservative loss-window absorption: flag and floor *everything*.

        Used when the deposed primary's retained change history cannot prove
        completeness for the winner's gap (deep lag or an old-epoch winner
        beyond the retention window).  Flagging every key the deposed
        primary ever versioned over-invalidates -- strictly fail-stale --
        and raising every floor guarantees no issued version number is ever
        recycled.
        """
        for name in source.collection_names():
            floors = source.collection(name).version_floors()
            if not floors:
                continue
            collection = node.database.create_collection(name)
            collection.restore_version_floors(floors)
            for document_id in floors:
                self.ebf.report_invalidation(record_key(name, document_id), timestamp)

    def partition(self, node_a: str, node_b: str) -> None:
        """Partition the replication link between two group members.

        Only primary-to-replica links carry traffic, so a partition between
        two replicas records the pair but has no immediate effect (it will,
        should one of them be promoted later).  A degenerate pair (both
        endpoints resolving to the same node -- e.g. a role target written
        against a pre-failover topology) is a no-op: a node cannot be
        partitioned from itself.
        """
        self.node(node_a)
        self.node(node_b)
        if node_a == node_b:
            self.counters.increment("degenerate_partitions_ignored")
            return
        # Delivery is lazy: records already due on the affected links had
        # arrived *before* the partition began and must not be blocked
        # retroactively -- only in-flight and future traffic is cut.
        now = self.clock.now()
        for endpoint in (node_a, node_b):
            node = self.node(endpoint)
            if node.alive and node is not self.primary_node:
                node.deliver_until(now)
        self._partitions.add(frozenset((node_a, node_b)))
        self._apply_partitions()

    def heal(self, node_a: str, node_b: str, now: Optional[float] = None) -> None:
        """Heal a partition; the backlogged log ships shortly after."""
        pair = frozenset((node_a, node_b))
        if pair not in self._partitions:
            return
        self._partitions.discard(pair)
        timestamp = self.clock.now() if now is None else now
        primary_id = self.primary_node_id
        others = pair - {primary_id}
        if len(others) == 1:
            node = self.node(next(iter(others)))
            if node.link.partitioned:
                node.link.heal(timestamp, self.config.lag.sample())

    def _apply_partitions(self) -> None:
        """Project the partition set onto the current primary's links."""
        primary_id = self.primary_node_id
        partitioned_peers = set()
        for pair in self._partitions:
            others = pair - {primary_id}
            # Pairs not involving the primary (or degenerate ones) have no
            # live link to cut.
            if len(others) == 1:
                partitioned_peers.add(next(iter(others)))
        for node in self.replica_nodes():
            node.link.partitioned = node.node_id in partitioned_peers

    def __repr__(self) -> str:
        return (
            f"ReplicaGroup(shard={self.shard_id}, rf={self.config.replication_factor}, "
            f"primary={self.primary_node_id}, alive={self.primary_alive})"
        )
