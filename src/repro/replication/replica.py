"""A replica node: a full database copy fed by asynchronous log shipping.

A :class:`ReplicaNode` owns a real :class:`~repro.db.Database` (not a
flattened key/value mirror), for one reason: on failover the node is promoted
to primary, and a promoted node must be able to carry a complete
:class:`~repro.core.QuaestorServer` -- query execution, secondary indexes,
version sequences, change stream for future writes -- without a rebuild.
Applying the shipped log as real collection operations keeps every document
version in lock-step with the primary (the same ordered mutation sequence
produces the same version numbers), which is what makes ETags and the
client-side version-keyed caches agree across primary and replica reads.
"""

from __future__ import annotations

from typing import Optional

from repro.clock import Clock
from repro.db.changestream import OperationType
from repro.db.database import Database
from repro.db.documents import deep_copy
from repro.errors import CacheCoherenceError, DocumentNotFoundError
from repro.replication.log_shipping import LogRecord, ReplicationLink


class ReplicaNode:
    """One member of a replica group (primary or secondary).

    The node tracks an *apply watermark*: the timestamp (and change-stream
    sequence) of the last log record it applied.  The watermark is what
    causal reads are gated on -- a replica may serve a causal session only
    when its watermark has caught up to the session's frontier -- and what
    failover uses to pick the freshest promotion candidate.
    """

    def __init__(self, node_id: str, clock: Clock, database: Optional[Database] = None) -> None:
        self.node_id = node_id
        self._clock = clock
        self.database = database if database is not None else Database(clock=clock)
        self.link = ReplicationLink()
        self.alive = True
        #: Promotion epoch this node's log position belongs to.  Sequence
        #: numbers are only comparable within one epoch (every promotion
        #: starts a new change stream); the group stamps this on every
        #: seed/realign, and failover prefers current-epoch candidates.
        self.epoch = 0
        #: Whether an *empty* link proves this node has received everything
        #: acknowledged.  True only while the node has been continuously
        #: alive since its last seed: a crashed node receives no ship
        #: fan-out, so after a crash an empty link proves nothing until the
        #: next snapshot resync restores the invariant.
        self.link_sound = True
        #: Change-stream sequence of the last applied record (0 = nothing).
        self.applied_sequence = 0
        #: Primary-side commit timestamp of the last applied record.
        self.applied_timestamp = 0.0
        self.records_applied = 0

    # -- bootstrap / resync -----------------------------------------------------------

    def seed_from(self, source: Database, upto_sequence: int = 0, upto_timestamp: float = 0.0) -> None:
        """Snapshot resync: rebuild this node's database from ``source``.

        Every collection is recreated with the same secondary indexes and the
        same version floors, and each live document is inserted so it lands at
        exactly its source version (``restore_version_floors`` primes the
        insert to continue the sequence).  A floor *above* a live version
        (failover protection against re-issuing a deposed primary's numbers)
        is carried over after the snapshot inserts, so the protection
        survives resyncs.  Used at group construction, when a crashed node
        rejoins, and to realign surviving replicas after a promotion (their
        logs may have diverged from the new primary's).
        """
        self.database = Database(clock=self._clock)
        self.link = ReplicationLink()
        for name in source.collection_names():
            source_collection = source.collection(name)
            replica_collection = self.database.create_collection(name)
            for field in source_collection.indexed_fields():
                replica_collection.create_index(field)
            floors = source_collection.version_floors()
            live_versions = {
                document_id: source_collection.version(document_id)
                for document_id in source_collection.ids()
            }
            # Prime floors one below the live version so the snapshot insert
            # assigns exactly the source version; tombstoned ids keep their
            # final version so later re-inserts continue the sequence.
            primed = {
                document_id: live_versions[document_id] - 1
                if document_id in live_versions
                else floor
                for document_id, floor in floors.items()
            }
            replica_collection.restore_version_floors(primed)
            for document_id in source_collection.ids():
                replica_collection.insert(source_collection.get(document_id))
                applied = replica_collection.version(document_id)
                expected = live_versions[document_id]
                if applied != expected:
                    raise CacheCoherenceError(
                        f"snapshot resync of {self.node_id} produced version {applied} "
                        f"for {name}/{document_id}, primary has {expected}"
                    )
            # Re-apply floors that exceed the live version (consumed or
            # bypassed by the inserts above): only-raise semantics keep the
            # rest untouched.
            replica_collection.restore_version_floors(
                {
                    document_id: floor
                    for document_id, floor in floors.items()
                    if floor > live_versions.get(document_id, 0)
                }
            )
        self.applied_sequence = upto_sequence
        self.applied_timestamp = upto_timestamp
        self.link_sound = True

    # -- log delivery -----------------------------------------------------------------

    def deliver_until(self, now: float) -> int:
        """Apply every shipped record whose delivery time has passed."""
        applied = 0
        for record in self.link.take_ready(now):
            self._apply(record)
            applied += 1
        return applied

    def _apply(self, record: LogRecord) -> None:
        event = record.event
        collection = self.database.create_collection(event.collection)
        if event.operation is OperationType.INSERT:
            collection.insert(deep_copy(event.after))
        elif event.operation is OperationType.UPDATE:
            collection.replace(event.document_id, deep_copy(event.after))
        else:  # DELETE
            try:
                collection.delete(event.document_id)
            except DocumentNotFoundError:
                raise CacheCoherenceError(
                    f"replica {self.node_id} applied a delete for missing "
                    f"{event.collection}/{event.document_id} (log gap)"
                )
        if event.operation is not OperationType.DELETE:
            applied_version = collection.version(event.document_id)
            if record.version and applied_version != record.version:
                raise CacheCoherenceError(
                    f"replica {self.node_id} diverged on {event.collection}/"
                    f"{event.document_id}: applied version {applied_version}, "
                    f"primary shipped {record.version}"
                )
        self.applied_sequence = event.sequence
        self.applied_timestamp = event.timestamp
        self.records_applied += 1

    # -- introspection ----------------------------------------------------------------

    @property
    def lag_records(self) -> int:
        """Shipped-but-unapplied records (current replication backlog)."""
        return len(self.link)

    def staleness_at(self, now: float) -> float:
        """Age of the oldest unapplied write (0.0 when fully caught up).

        The observable bound on how far behind this replica's served state
        can be; Delta-atomic read routing excludes replicas whose staleness
        exceeds the configured budget.
        """
        oldest = self.link.oldest_pending_timestamp()
        return max(0.0, now - oldest) if oldest is not None else 0.0

    def caught_up_to(self, timestamp: Optional[float]) -> bool:
        """Whether this node has applied everything up to ``timestamp``.

        A ``None`` frontier (session never observed a primary state) is
        trivially satisfied.  A node is caught up when its watermark has
        passed the frontier, or when its backlog is empty *and* the link is
        sound -- shipping is synchronous with writes, so an empty link on a
        continuously-alive node means nothing acknowledged is outstanding.
        A node that rejoined after a crash without a resync has an empty
        link that proves nothing (``link_sound`` is False), so only its
        watermark counts.
        """
        if timestamp is None:
            return True
        if self.applied_timestamp >= timestamp:
            return True
        return self.link_sound and len(self.link) == 0

    def __repr__(self) -> str:
        return (
            f"ReplicaNode(id={self.node_id!r}, alive={self.alive}, "
            f"applied_seq={self.applied_sequence}, backlog={self.lag_records})"
        )
