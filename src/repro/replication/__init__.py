"""Per-shard replication: replica groups, asynchronous log shipping, failover.

A DBaaS must survive node loss.  This package adds the standard availability
answer on top of the sharded deployment (:mod:`repro.cluster`): every shard
becomes a :class:`ReplicaGroup` -- a primary
:class:`~repro.core.QuaestorServer` plus ``replication_factor - 1`` replica
databases fed by asynchronous log shipping with a modelled replication-lag
distribution.  Replica reads are gated by the paper's consistency levels
(STRONG always routes to the primary; CAUSAL checks the replica's apply
watermark against the session's causal frontier; DELTA_ATOMIC scale-out reads
accept bounded staleness the auditor measures), and failover promotes the
freshest surviving replica deterministically, flagging the asynchronous loss
window stale in the coherence filter (fail-stale, never fail-incorrect).

With ``replication_factor=1`` and no faults the layer is a strict no-op:
reads route to the primary through the identical code path, no lag is ever
sampled, and seeded simulation results are value-identical to a deployment
without this package.

Fault scenarios (crash / recover / partition schedules) are driven by the
companion :mod:`repro.faults` package.
"""

from __future__ import annotations

from repro.replication.config import ReplicationConfig, default_replication_lag
from repro.replication.group import ReplicaGroup
from repro.replication.log_shipping import LogRecord, ReplicationLink
from repro.replication.replica import ReplicaNode

__all__ = [
    "ReplicationConfig",
    "default_replication_lag",
    "ReplicaGroup",
    "ReplicaNode",
    "ReplicationLink",
    "LogRecord",
]
