"""Asynchronous log shipping: the primary-to-replica replication channel.

Every acknowledged write on a primary produces a
:class:`~repro.db.changestream.ChangeEvent`; the replica group wraps it into
a :class:`LogRecord` (adding the authoritative post-write version and the
modelled delivery time) and appends it to one :class:`ReplicationLink` per
replica.  Delivery is pull-based and lazy: a replica applies every record
whose delivery time has passed the moment it is asked to serve a read (or is
considered for promotion), which keeps the simulation deterministic without
scheduling one event per shipped write.

Links model two failure behaviours:

* **Partition** -- a partitioned link keeps accumulating records (the
  primary retains its log) but delivers nothing until :meth:`heal`, at which
  point the backlog is re-timed to arrive shortly after the heal.
* **Loss on failover** -- records still pending on the freshest replica's
  link when its primary crashes are the classic asynchronous-replication
  loss window; the group flags the affected keys stale in the coherence
  filter rather than pretending they arrived (fail-stale, never
  fail-incorrect).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.db.changestream import ChangeEvent


class LogRecord:
    """One shipped change-stream entry, annotated for replica apply.

    ``version`` is the authoritative post-write version of the document on
    the primary (``0`` for deletes), captured synchronously at ship time so
    the replica can verify its own version sequence stayed in lock-step.
    ``apply_at`` is the virtual time at which the record becomes visible on
    the receiving replica.
    """

    __slots__ = ("event", "version", "apply_at")

    def __init__(self, event: ChangeEvent, version: int, apply_at: float) -> None:
        self.event = event
        self.version = version
        self.apply_at = apply_at

    def __repr__(self) -> str:
        return (
            f"LogRecord(sequence={self.event.sequence}, "
            f"operation={self.event.operation.value}, apply_at={self.apply_at:.4f})"
        )


class ReplicationLink:
    """The in-order delivery channel between a primary and one replica."""

    def __init__(self) -> None:
        self._pending: Deque[LogRecord] = deque()
        self.partitioned = False
        #: Delivery times are forced monotone per link so jittered lag draws
        #: can never reorder the log (replicas apply strictly in sequence).
        self._last_apply_at = 0.0
        self.shipped = 0
        self.delivered = 0

    def ship(self, record: LogRecord) -> None:
        """Append ``record``, clamping its delivery time to stay in order."""
        if record.apply_at < self._last_apply_at:
            record.apply_at = self._last_apply_at
        self._last_apply_at = record.apply_at
        self._pending.append(record)
        self.shipped += 1

    def take_ready(self, now: float) -> List[LogRecord]:
        """Pop every record whose delivery time has passed (FIFO order)."""
        if self.partitioned:
            return []
        ready: List[LogRecord] = []
        pending = self._pending
        while pending and pending[0].apply_at <= now:
            ready.append(pending.popleft())
        self.delivered += len(ready)
        return ready

    def partition(self) -> None:
        """Stop delivering; the primary keeps appending to the backlog."""
        self.partitioned = True

    def heal(self, now: float, catchup_lag: float) -> None:
        """Re-open the link; the backlog is re-timed to land after the heal."""
        self.partitioned = False
        arrival = now + max(0.0, catchup_lag)
        for record in self._pending:
            if record.apply_at < arrival:
                record.apply_at = arrival
        if self._pending:
            self._last_apply_at = max(self._last_apply_at, self._pending[-1].apply_at)

    def pending_records(self) -> List[LogRecord]:
        """Records shipped but not yet delivered (the potential loss window)."""
        return list(self._pending)

    def oldest_pending_timestamp(self) -> Optional[float]:
        """Commit timestamp of the oldest undelivered record (O(1) peek)."""
        return self._pending[0].event.timestamp if self._pending else None

    def clear(self) -> None:
        """Drop the backlog (used when a replica is re-seeded via snapshot)."""
        self._pending.clear()

    def __len__(self) -> int:
        return len(self._pending)

    def __repr__(self) -> str:
        return (
            f"ReplicationLink(pending={len(self._pending)}, shipped={self.shipped}, "
            f"partitioned={self.partitioned})"
        )
