#!/usr/bin/env python3
"""Documentation link/import checker (the ``make docs-check`` target).

Scans ``README.md`` and every Markdown file under ``docs/`` for

* dotted module references like ``repro.cluster`` or
  ``src/repro/core/server.py`` -- the module (or the attribute of a module,
  e.g. ``repro.ttl.estimator``) must be importable from ``src/``, and
* repository-relative file paths like ``benchmarks/bench_table1.py`` or
  ``examples/quickstart.py`` -- the file or directory must exist.

It additionally enforces *coverage*: every subsystem package listed in
``REQUIRED_MODULES`` must both import and be referenced somewhere in the
scanned documentation, so a new subsystem cannot land undocumented (and a
removed one cannot leave its docs behind).

Exits non-zero listing every reference that does not resolve, so stale docs
fail CI instead of silently rotting.
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline-code spans are the docs' way of naming code; only those are checked.
CODE_SPAN = re.compile(r"`([^`\n]+)`")
#: A repository-relative path: at least one slash, a known top-level prefix.
PATH_PREFIXES = ("src/", "docs/", "tests/", "benchmarks/", "examples/", "scripts/")
#: A dotted reference into the reproduction package.
MODULE_REFERENCE = re.compile(r"^repro(\.\w+)+$")

#: Subsystem packages every documentation pass must cover: each must import
#: from ``src/`` *and* be referenced in README.md or docs/.
REQUIRED_MODULES = (
    "repro.bloom",
    "repro.caching",
    "repro.client",
    "repro.cluster",
    "repro.core",
    "repro.db",
    "repro.faults",
    "repro.invalidb",
    "repro.obs",
    "repro.replication",
    "repro.resilience",
    "repro.simulation",
    "repro.simulation.parallel",
    "repro.ttl",
    "repro.ttl.bakeoff",
    "repro.verify",
    "repro.workloads",
)


def iter_markdown_files() -> list:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("**/*.md")))
    return [path for path in files if path.exists()]


def check_module(reference: str) -> bool:
    """True when ``reference`` imports as a module or module attribute."""
    try:
        importlib.import_module(reference)
        return True
    except ImportError:
        module, _, attribute = reference.rpartition(".")
        if not module:
            return False
        try:
            return hasattr(importlib.import_module(module), attribute)
        except ImportError:
            return False


def check_path(reference: str) -> bool:
    return (REPO_ROOT / reference).exists()


def check_file(path: Path) -> list:
    """All broken references in one Markdown file, as (line, ref, kind)."""
    broken = []
    for line_number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        for span in CODE_SPAN.findall(line):
            candidate = span.strip()
            if MODULE_REFERENCE.match(candidate):
                if not check_module(candidate):
                    broken.append((line_number, candidate, "module"))
            elif (
                candidate.startswith(PATH_PREFIXES)
                and " " not in candidate
                and "<" not in candidate  # template placeholders like <experiment>
            ):
                if not check_path(candidate):
                    broken.append((line_number, candidate, "path"))
    return broken


def check_required_coverage(markdown_files: list) -> list:
    """Required modules that fail to import or go unmentioned in the docs."""
    corpus = "\n".join(path.read_text(encoding="utf-8") for path in markdown_files)
    problems = []
    for module in REQUIRED_MODULES:
        if not check_module(module):
            problems.append((module, "does not import"))
        elif module not in corpus:
            problems.append((module, "not referenced anywhere in README.md or docs/"))
    return problems


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    failures = 0
    checked = 0
    markdown_files = iter_markdown_files()
    for path in markdown_files:
        checked += 1
        for line_number, reference, kind in check_file(path):
            failures += 1
            relative = path.relative_to(REPO_ROOT)
            print(f"{relative}:{line_number}: unresolved {kind} reference: {reference}")
    for module, problem in check_required_coverage(markdown_files):
        failures += 1
        print(f"coverage: required module {module}: {problem}")
    if failures:
        print(f"docs-check: {failures} broken reference(s) in {checked} file(s)")
        return 1
    print(f"docs-check: OK ({checked} file(s) checked, {len(REQUIRED_MODULES)} modules covered)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
