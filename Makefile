# Developer entry points for the Quaestor reproduction.
#
#   make test            - tier-1 test suite (what CI gates on)
#   make bench-smoke     - fast benchmark subset (EBF micro + cluster scaling)
#   make bench           - every benchmark target (regenerates benchmarks/results/)
#   make bench-hotpaths  - hot-path microbenchmarks; rewrites BENCH_hotpaths.json
#   make bench-hotpaths-check - budget-mode run gated against the committed
#                               BENCH_hotpaths.json (fails when a speedup
#                               ratio collapses >3x)
#   make bench-sim       - end-to-end simulator throughput; rewrites BENCH_sim.json
#   make bench-sim-check - budget-mode run gated against the committed
#                          BENCH_sim.json (fails when a speedup ratio
#                          collapses >3x)
#   make bench-replication       - replica-read scale-out + failover drills;
#                                  rewrites BENCH_replication.json
#   make bench-replication-check - budget-mode run gated against the committed
#                                  BENCH_replication.json (fails when the RF=3
#                                  scale-out collapses or failover degrades)
#   make bench-ttl       - TTL estimator bake-off grid; rewrites BENCH_ttl.json
#   make bench-ttl-check - budget-mode run gated against the committed
#                          BENCH_ttl.json (fails when the winner's quality
#                          score collapses >3x; deterministic, seeded)
#   make bench-sim-parallel       - process-parallel scaling grid (workers=1/2/4/8,
#                                   or SIM_WORKERS=N for a single count); parity
#                                   against the serial oracle asserted before timing
#   make bench-sim-parallel-check - budget-mode parallel grid gated on measured
#                                   scaling floors (0.625x per usable worker;
#                                   oversubscribed counts bounded)
#   make sim-parallel-smoke       - oracle-parity + worker-invariance test subset
#   make smoke-failover  - seeded crash+recover scenario must stay deterministic
#   make bench-resilience        - availability/staleness chaos grid (resilience
#                                  on vs off); rewrites BENCH_resilience.json
#   make bench-resilience-check  - budget-mode run gated against the committed
#                                  BENCH_resilience.json (fails when resilience
#                                  stops beating the unprotected arm on a gray
#                                  scenario or staleness escapes the Δ budget)
#   make chaos-smoke     - seeded gray-failure scenarios (brownout/flaky/hedge)
#                          must stay deterministic and keep their wins
#   make verify-consistency       - full consistency audit: record histories for
#                                   the chaos x RF x consistency scenario matrix,
#                                   run the Δ-atomicity/session-guarantee checkers
#                                   (zero violations required) and the mutation
#                                   self-test (every injected breach detected),
#                                   then the slow_chaos pytest cells
#   make verify-consistency-smoke - one representative scenario per fault
#                                   archetype; the quick CI gate
#   make obs-smoke       - seeded brownout scenario with tracing on: asserts the
#                          summary is value-identical to the tracing-off run, the
#                          span tree is non-empty and >=95% of every request's
#                          latency is attributed; writes benchmarks/results/obs/
#   make docs-check      - fail if README.md or docs/ reference missing modules/files

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

# Benchmarks with their own CLI entry point (report writers / CI gates); every
# other benchmarks/bench_*.py file is a pytest-style benchmark that `make
# bench` collects.  New gated benchmarks are added HERE, not to a filter-out
# chain that silently rots when a file is renamed.
GATED_BENCH := \
	benchmarks/bench_hotpaths.py \
	benchmarks/bench_sim_throughput.py \
	benchmarks/bench_replication.py \
	benchmarks/bench_ttl.py \
	benchmarks/bench_resilience.py

BENCH_FILES := $(filter-out $(GATED_BENCH),$(wildcard benchmarks/bench_*.py))

.PHONY: test bench-smoke bench bench-hotpaths bench-hotpaths-check bench-sim bench-sim-check bench-sim-parallel bench-sim-parallel-check sim-parallel-smoke bench-replication bench-replication-check bench-ttl bench-ttl-check bench-resilience bench-resilience-check smoke-failover chaos-smoke verify-consistency verify-consistency-smoke obs-smoke docs-check

test:
	$(PYTEST) -x -q

bench-smoke:
	$(PYTEST) benchmarks/bench_ebf_throughput.py benchmarks/bench_cluster_scaling.py -q

bench:
	$(PYTEST) $(BENCH_FILES) -q

bench-hotpaths:
	$(PYTHON) benchmarks/bench_hotpaths.py

bench-hotpaths-check:
	$(PYTHON) benchmarks/bench_hotpaths.py --budget --check BENCH_hotpaths.json

bench-sim:
	$(PYTHON) benchmarks/bench_sim_throughput.py

bench-sim-check:
	$(PYTHON) benchmarks/bench_sim_throughput.py --budget --check BENCH_sim.json

bench-sim-parallel:
	$(PYTHON) benchmarks/bench_sim_throughput.py --no-write $(if $(SIM_WORKERS),--workers $(SIM_WORKERS))

bench-sim-parallel-check:
	$(PYTHON) benchmarks/bench_sim_throughput.py --budget --check-parallel

sim-parallel-smoke:
	$(PYTEST) tests/simulation/test_parallel_parity.py tests/simulation/test_parallel_invariance.py -q

bench-replication:
	$(PYTHON) benchmarks/bench_replication.py

bench-replication-check:
	$(PYTHON) benchmarks/bench_replication.py --budget --check BENCH_replication.json

bench-ttl:
	$(PYTHON) benchmarks/bench_ttl.py

bench-ttl-check:
	$(PYTHON) benchmarks/bench_ttl.py --budget --check BENCH_ttl.json

bench-resilience:
	$(PYTHON) benchmarks/bench_resilience.py

bench-resilience-check:
	$(PYTHON) benchmarks/bench_resilience.py --budget --check BENCH_resilience.json

smoke-failover:
	$(PYTEST) tests/replication/test_failover_smoke.py -q

chaos-smoke:
	$(PYTEST) tests/resilience/test_chaos_smoke.py -q

verify-consistency:
	PYTHONPATH=src $(PYTHON) -m repro.verify
	$(PYTEST) -m slow_chaos -q

verify-consistency-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.verify --smoke

obs-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.obs --smoke --out benchmarks/results/obs

docs-check:
	$(PYTHON) scripts/docs_check.py
