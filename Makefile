# Developer entry points for the Quaestor reproduction.
#
#   make test        - tier-1 test suite (what CI gates on)
#   make bench-smoke - fast benchmark subset (EBF micro + cluster scaling)
#   make bench       - every benchmark target (regenerates benchmarks/results/)
#   make docs-check  - fail if README.md or docs/ reference missing modules/files

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

BENCH_FILES := $(wildcard benchmarks/bench_*.py)

.PHONY: test bench-smoke bench docs-check

test:
	$(PYTEST) -x -q

bench-smoke:
	$(PYTEST) benchmarks/bench_ebf_throughput.py benchmarks/bench_cluster_scaling.py -q

bench:
	$(PYTEST) $(BENCH_FILES) -q

docs-check:
	$(PYTHON) scripts/docs_check.py
