#!/usr/bin/env python3
"""A failover drill: the blog platform loses its primary at t=30s.

The blog-platform workload (readers loading feeds and posts, authors
publishing edits) runs against a replicated single-shard deployment
(replication factor 3).  A scripted fault plan crashes the primary at
t=30s; failure detection takes two seconds, after which the freshest
replica is promoted, and the crashed node rejoins as a replica at t=45s.

The drill prints what a DBaaS operator would watch on a dashboard: per
phase (healthy / outage / failed-over / recovered) the availability of
reads, queries and writes, where reads were served, and the fraction of
reads the staleness auditor flags -- showing that reads stay available
*fail-stale* through the outage while writes briefly error, and that
everything returns to normal after the promotion.

Run with:  python examples/failover_drill.py
"""

from __future__ import annotations

from collections import defaultdict

from repro.clock import VirtualClock
from repro.cluster import ClusterClient, QuaestorCluster
from repro.client import QuaestorClient
from repro.db import Query
from repro.faults import FaultInjector, FaultPlan
from repro.replication import ReplicationConfig
from repro.simulation import EventQueue
from repro.simulation.latency import LatencyModel

CRASH_AT = 30.0
DETECTION_DELAY = 2.0
RECOVER_AT = 45.0
DRILL_END = 60.0
STEP = 0.5


def phase_of(now: float) -> str:
    if now < CRASH_AT:
        return "healthy"
    if now < CRASH_AT + DETECTION_DELAY:
        return "outage"
    if now < RECOVER_AT:
        return "failed-over"
    return "recovered"


def build_platform():
    clock = VirtualClock()
    cluster = QuaestorCluster(
        num_shards=1,
        clock=clock,
        matching_nodes=2,
        replication=ReplicationConfig(
            replication_factor=3,
            lag=LatencyModel(mean=0.05, jitter=0.01, minimum=0.001),
            failover_detection_delay=DETECTION_DELAY,
        ),
    )
    cluster.replication.reseed(97)
    facade = ClusterClient(cluster)
    for index in range(60):
        facade.handle_insert(
            "posts",
            {
                "_id": f"post-{index:03d}",
                "title": f"Blog post {index}",
                "category": "tech" if index % 3 == 0 else "life",
                "likes": index % 17,
            },
        )
    return clock, cluster, facade


def main() -> None:
    clock, cluster, facade = build_platform()
    reader = QuaestorClient(facade, clock=clock, refresh_interval=5.0, name="reader")
    author = QuaestorClient(facade, clock=clock, refresh_interval=5.0, name="author")
    reader.connect()
    author.connect()

    events = EventQueue()
    plan = FaultPlan.primary_crash(shard=0, at=CRASH_AT, recover_at=RECOVER_AT)
    injector = FaultInjector(cluster, events, clock, plan, detection_delay=DETECTION_DELAY)
    injector.arm()

    front_page = Query("posts", {"category": "tech"}, sort=[("likes", -1)], limit=5)
    stats = defaultdict(lambda: defaultdict(int))

    step = 0
    now = 0.0
    while now < DRILL_END:
        now = round(now + STEP, 6)
        events.run_until(clock, now)
        phase = phase_of(now)
        bucket = stats[phase]
        step += 1

        # A reader loads the front page and one post.
        query_result = reader.query(front_page)
        bucket["queries"] += 1
        if query_result.level == "error":
            bucket["query_errors"] += 1

        # Readers follow what authors touch: reading the recently edited
        # posts is what exposes replication lag to the staleness audit.
        post_id = f"post-{(step * 11) % 60:03d}"
        read_result = reader.read("posts", post_id)
        bucket["reads"] += 1
        bucket[f"read_via_{read_result.level}"] += 1
        if read_result.level == "error":
            bucket["read_errors"] += 1
        elif read_result.etag is not None:
            audit = cluster.auditor.audit_read(read_result.key, read_result.etag, now)
            bucket["reads_audited"] += 1
            if audit.stale:
                bucket["stale_reads"] += 1

        # Every second, an author edits a post.
        if step % 2 == 0:
            edit_id = f"post-{(step * 11) % 60:03d}"
            write_result = author.update("posts", edit_id, {"$inc": {"likes": 1}})
            bucket["writes"] += 1
            if write_result.level == "error":
                bucket["write_errors"] += 1

    print("fault timeline:")
    for entry in injector.timeline:
        extra = ""
        if "time_to_recover" in entry:
            extra = f"  (time to recover: {entry['time_to_recover']:.2f}s)"
        print(f"  t={entry['time']:5.1f}s  {entry['action']:<9} {entry['node']}{extra}")

    print("\nphase            reads ok   queries ok  writes ok   stale reads  served by")
    for phase in ("healthy", "outage", "failed-over", "recovered"):
        bucket = stats[phase]
        if not bucket["reads"]:
            continue

        def availability(total_key: str, error_key: str) -> str:
            total = bucket[total_key]
            if not total:
                return "    -"
            ok = total - bucket[error_key]
            return f"{100.0 * ok / total:5.1f}%"

        audited = bucket["reads_audited"]
        stale = f"{100.0 * bucket['stale_reads'] / audited:5.1f}%" if audited else "    -"
        served = ", ".join(
            f"{key.removeprefix('read_via_')}={count}"
            for key, count in sorted(bucket.items())
            if key.startswith("read_via_")
        )
        print(
            f"{phase:<15} {availability('reads', 'read_errors'):>9} "
            f"{availability('queries', 'query_errors'):>12} "
            f"{availability('writes', 'write_errors'):>10} {stale:>12}  {served}"
        )

    group = cluster.groups[0]
    print(f"\nreplica group after the drill: {group.status()}")
    print(
        "replication counters:",
        {key: value for key, value in group.counters.as_dict().items()},
    )
    print("drill complete: reads stayed available fail-stale through the outage,")
    print("writes resumed after promotion, and the old primary rejoined as a replica.")


if __name__ == "__main__":
    main()
