#!/usr/bin/env python3
"""Flash-sale scenario: a TV-featured shop survives a flash crowd on two servers.

The paper reports a production result: an e-commerce shop featured in a TV
show with 3.5 million viewers served 50,000 concurrent users and more than
20,000 HTTP requests per second with only two DBaaS servers and two MongoDB
shards, because the CDN cache hit rate reached 98 %.

This example reproduces the *mechanism* behind that anecdote with the Monte
Carlo simulator: a read-heavy flash crowd (product listings + article pages
with stock counters that change occasionally) is thrown at a Quaestor
deployment and at an uncached baseline, and the origin load of both is
compared.  The point is not the absolute request volume but the collapse of
origin traffic once the CDN and the client caches absorb the crowd.

Run with:  python examples/flash_sale.py
"""

from __future__ import annotations

from repro.simulation import CachingMode, SimulationConfig, Simulator
from repro.workloads import DatasetSpec, WorkloadSpec


def run_flash_sale(mode: CachingMode):
    config = SimulationConfig(
        mode=mode,
        # Product listings and article pages: almost everything is a read or a
        # query; stock counters produce a small trickle of updates.
        workload=WorkloadSpec(
            read_proportion=0.50,
            query_proportion=0.49,
            update_proportion=0.01,
            zipf_constant=0.9,
        ),
        dataset=DatasetSpec(
            num_tables=3, documents_per_table=1_000, queries_per_table=40, seed=3
        ),
        num_clients=20,
        connections_per_client=30,
        ebf_refresh_interval=5.0,
        matching_nodes=4,
        duration=120.0,
        max_operations=8_000,
        seed=99,
    )
    return Simulator(config).run()


def origin_share(result) -> float:
    """Fraction of read/query operations that had to be answered by the origin."""
    origin = 0
    total = 0
    for op_class in ("read", "query"):
        counts = result.level_counts[op_class]
        origin += counts.get("origin", 0)
        total += sum(counts.values())
    return origin / total if total else 0.0


def main() -> None:
    print("simulating the flash crowd with full Quaestor caching ...")
    cached = run_flash_sale(CachingMode.QUAESTOR)
    print("simulating the same crowd without web caching ...")
    uncached = run_flash_sale(CachingMode.UNCACHED)

    cached_origin = origin_share(cached)
    uncached_origin = origin_share(uncached)

    print("\n--- flash sale summary -------------------------------------------------")
    print(f"throughput (cached):    {cached.throughput:10.0f} ops/s")
    print(f"throughput (uncached):  {uncached.throughput:10.0f} ops/s")
    print(f"speed-up:               {cached.throughput / max(1.0, uncached.throughput):10.1f} x")
    print(f"origin share (cached):  {cached_origin:10.1%} of reads/queries")
    print(f"origin share (uncached):{uncached_origin:10.1%} of reads/queries")
    combined_hit_rate = 1.0 - cached_origin
    print(f"combined cache hit rate:{combined_hit_rate:10.1%}  (paper's production shop: ~98 %)")
    print(f"mean query latency:     {cached.query_latency.mean * 1000:10.1f} ms (cached)")
    print(f"                        {uncached.query_latency.mean * 1000:10.1f} ms (uncached)")
    print(
        "\nwith caching, the origin only sees the small uncachable remainder of the "
        "traffic -- which is how two DBaaS servers can survive a televised flash crowd."
    )


if __name__ == "__main__":
    main()
