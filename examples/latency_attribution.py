#!/usr/bin/env python3
"""Where does a request's latency go?  Trace a brownout and find out.

The observability layer (``repro.obs``) records a span tree for every
simulated request -- SDK root, router decision, cluster scatter, pipeline
stages -- and hangs the simulator's priced latency components off it
(``net.origin``, ``gray.slow``, ``resilience.retry``, ...).  This example:

1. Runs a small two-shard Quaestor cluster through a gray brownout
   (shard 0 turns slow and flaky, then recovers) with the resilience
   layer on and tracing enabled.
2. Picks the p50 and the p99 request by total latency and prints each
   one's top-3 critical-path stages -- the tail is dominated by the
   brownout's inflation and retries, while the median request barely
   touches the network at all.
3. Prints the fleet-wide per-stage attribution table.

Tracing is deterministic and draw-free: running the same seed with
observability off produces value-identical results.

Run with:  python examples/latency_attribution.py
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan
from repro.obs import (
    ObservabilityConfig,
    critical_path,
    index_spans,
    latency_attribution,
    percentile_root,
    request_roots,
)
from repro.resilience import ResilienceConfig
from repro.simulation import CachingMode, SimulationConfig, Simulator
from repro.workloads import DatasetSpec, WorkloadSpec


def main() -> None:
    config = SimulationConfig(
        mode=CachingMode.QUAESTOR,
        workload=WorkloadSpec.read_heavy(),
        dataset=DatasetSpec(num_tables=2, documents_per_table=120, queries_per_table=12),
        num_clients=2,
        connections_per_client=10,
        duration=30.0,
        max_operations=800,
        seed=7,
        num_shards=2,
        fault_plan=FaultPlan.brownout(shard=0, at=0.1, recover_at=0.5),
        resilience=ResilienceConfig(),
        observability=ObservabilityConfig.full(),
    )
    simulator = Simulator(config)
    summary = simulator.run().summary()
    spans = simulator.trace_spans()

    print("latency attribution under a shard brownout")
    print(
        f"  {summary['faults_injected']:.0f} faults injected, "
        f"{summary['resilience_retries']:.0f} retries, "
        f"throughput {summary['throughput']:.0f} ops/s"
    )
    print()

    _by_id, children = index_spans(spans)
    roots = request_roots(spans)
    for fraction, label in ((0.5, "p50"), (0.99, "p99")):
        root = percentile_root(roots, fraction)
        print(f"top stages at {label} ({root.name}, {root.cost * 1000.0:.3f}ms total):")
        stages = critical_path(root, children, k=3)
        if not stages:
            print("  (served from the client cache: nothing to attribute)")
        for rank, (name, cost) in enumerate(stages, 1):
            print(f"  {rank}. {name:<22} {cost * 1000.0:>10.3f}ms")
        print()

    attribution = latency_attribution(spans)
    print(
        f"fleet-wide attribution over {attribution['requests']} requests "
        f"(coverage min {attribution['min_coverage']:.2f}):"
    )
    for name, cost, share in attribution["stages"][:6]:
        print(f"  {name:<22} {cost:>10.4f}s {share:>7.1%}")


if __name__ == "__main__":
    main()
