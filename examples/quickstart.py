#!/usr/bin/env python3
"""Quickstart: cache a query, watch it being invalidated, stay within Delta.

This walks through the end-to-end example of Section 5 of the paper:

1. A client connects and receives the (initially empty) Expiring Bloom Filter.
2. It runs a query; the result comes from the origin, gets a TTL and is cached
   in the browser cache and the CDN.
3. Repeating the query is a client-cache hit (zero network round trips).
4. A write changes the query result: InvaliDB detects it, the server adds the
   query to the EBF and purges the CDN.
5. Until the client refreshes its EBF copy, it may still serve the bounded-
   stale cached result; after the refresh the query is revalidated and fresh.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.caching import InvalidationCache
from repro.clock import VirtualClock
from repro.client import QuaestorClient
from repro.core import QuaestorConfig, QuaestorServer
from repro.db import Database, Query
from repro.invalidb import InvaliDBCluster


def main() -> None:
    # --- deployment: database, Quaestor server, CDN. -------------------------------
    clock = VirtualClock()
    database = Database(clock=clock)
    posts = database.create_collection("posts")
    posts.create_index("tags")
    for index in range(20):
        posts.insert(
            {
                "_id": f"post-{index}",
                "title": f"Post {index}",
                "tags": ["example"] if index % 2 == 0 else ["other"],
                "views": index * 10,
            }
        )

    server = QuaestorServer(
        database, config=QuaestorConfig(), invalidb=InvaliDBCluster(matching_nodes=4)
    )
    cdn = InvalidationCache("cdn", clock)
    server.register_purge_target(cdn)

    # --- a browser client with a 10-second staleness bound (Delta). -----------------
    client = QuaestorClient(server, cdn=cdn, clock=clock, refresh_interval=10.0)
    client.connect()

    tagged_example = Query("posts", {"tags": "example"})

    first = client.query(tagged_example)
    print(f"1st query: served by {first.level!r:8} with {len(first.value)} posts")

    second = client.query(tagged_example)
    print(f"2nd query: served by {second.level!r:8} (client cache hit, zero latency)")

    record = client.read("posts", "post-0")
    print(f"record read: served by {record.level!r:8} (cached as a query side effect)")

    # --- a write invalidates the cached query result. --------------------------------
    print("\nwriting: post-1 gains the 'example' tag ...")
    client.update("posts", "post-1", {"$set": {"tags": ["example", "other"]}})
    print(f"   server stats: {server.statistics()}")

    clock.advance(2.0)
    stale = client.query(tagged_example)
    print(
        f"query 2s after the write: served by {stale.level!r:8} with {len(stale.value)} posts "
        "(bounded staleness: the EBF copy is still the old one)"
    )

    clock.advance(10.0)
    fresh = client.query(tagged_example)
    print(
        f"query after the EBF refresh interval: served by {fresh.level!r:8} with "
        f"{len(fresh.value)} posts (revalidated, now fresh)"
    )

    print("\nclient counters:", client.counters.as_dict())
    print("CDN statistics:  ", cdn.stats.as_dict())


if __name__ == "__main__":
    main()
