#!/usr/bin/env python3
"""Tuning the latency/staleness trade-off: Delta, consistency levels, sessions.

Quaestor's central knob is the Expiring Bloom Filter refresh interval Delta:
it bounds how stale any read can be (Delta-atomicity) while directly
controlling how many requests can be served from caches.  This example
measures the trade-off end to end and demonstrates the session guarantees:

1. sweep Delta and report cache hit rate vs measured staleness,
2. show monotonic reads protecting a session from version regressions,
3. show causal and strong consistency opt-ins paying extra revalidations.

Run with:  python examples/consistency_tuning.py
"""

from __future__ import annotations

from repro.caching import InvalidationCache
from repro.clock import VirtualClock
from repro.client import QuaestorClient
from repro.core import ConsistencyLevel, QuaestorConfig, QuaestorServer
from repro.db import Database, Query
from repro.invalidb import InvaliDBCluster
from repro.simulation import CachingMode, SimulationConfig, Simulator
from repro.workloads import DatasetSpec, WorkloadSpec


def sweep_delta() -> None:
    print("sweeping the EBF refresh interval (Delta) ...")
    print(f"{'Delta (s)':>10} | {'query hit rate':>14} | {'stale queries':>13} | {'max staleness (s)':>17}")
    print("-" * 65)
    for delta in (0.5, 2.0, 10.0, 30.0):
        config = SimulationConfig(
            mode=CachingMode.QUAESTOR,
            workload=WorkloadSpec.with_update_rate(0.05),
            dataset=DatasetSpec(num_tables=2, documents_per_table=800, queries_per_table=40),
            num_clients=10,
            connections_per_client=6,
            ebf_refresh_interval=delta,
            duration=max(60.0, 4 * delta),
            max_operations=5_000,
            seed=5,
        )
        simulator = Simulator(config)
        result = simulator.run()
        print(
            f"{delta:>10.1f} | {result.client_query_hit_rate:>14.2%} | "
            f"{result.query_stale_rate:>13.2%} | {simulator.auditor.max_staleness:>17.2f}"
        )
    print("staleness never exceeds Delta by more than the invalidation delay -- Theorem 1.\n")


def session_guarantees() -> None:
    print("demonstrating session guarantees ...")
    clock = VirtualClock()
    database = Database(clock=clock)
    accounts = database.create_collection("accounts")
    accounts.insert({"_id": "alice", "balance": 100})

    server = QuaestorServer(database, config=QuaestorConfig(), invalidb=InvaliDBCluster())
    cdn = InvalidationCache("cdn", clock)
    server.register_purge_target(cdn)

    alice = QuaestorClient(server, cdn=cdn, clock=clock, refresh_interval=30.0, name="alice")
    alice.connect()

    # Read-your-writes: immediately after a write, the session sees it.
    alice.read("accounts", "alice")
    alice.update("accounts", "alice", {"$inc": {"balance": 50}})
    own = alice.read("accounts", "alice")
    print(f"   read-your-writes: balance={own.value['balance']} (served by {own.level})")

    # Monotonic reads: even if a cache later returns an older copy, the session
    # never observes a version regression.
    older = alice.read("accounts", "alice")
    print(
        f"   monotonic reads:  version={older.version} "
        f"(never below the highest seen version)"
    )

    # Opt-in strong consistency: pays a full round trip but is linearizable.
    strong = alice.read("accounts", "alice", consistency=ConsistencyLevel.STRONG)
    print(f"   strong read:      balance={strong.value['balance']} (served by {strong.level})")

    revalidations = alice.counters.get("revalidations")
    print(f"   revalidations issued by this session: {revalidations}\n")


def causal_opt_in() -> None:
    print("causal consistency opt-in ...")
    clock = VirtualClock()
    database = Database(clock=clock)
    wall = database.create_collection("wall")
    wall.insert({"_id": "m1", "text": "first post", "replies": 0})

    server = QuaestorServer(database, config=QuaestorConfig(), invalidb=InvaliDBCluster())
    cdn = InvalidationCache("cdn", clock)
    server.register_purge_target(cdn)

    causal_client = QuaestorClient(
        server,
        cdn=cdn,
        clock=clock,
        refresh_interval=60.0,
        consistency=ConsistencyLevel.CAUSAL,
        name="causal",
    )
    causal_client.connect()

    first = causal_client.read("wall", "m1")
    other = QuaestorClient(server, cdn=cdn, clock=clock, refresh_interval=60.0, name="other")
    other.connect()
    other.update("wall", "m1", {"$inc": {"replies": 1}})

    clock.advance(1.0)
    second = causal_client.read("wall", "m1")
    print(
        f"   after observing data newer than its EBF, the causal session revalidates: "
        f"served by {second.level}, replies={second.value['replies']}"
    )
    print(f"   revalidations: {causal_client.counters.get('revalidations')}\n")


def main() -> None:
    sweep_delta()
    session_guarantees()
    causal_opt_in()


if __name__ == "__main__":
    main()
