#!/usr/bin/env python3
"""Audit every consistency guarantee over a recorded chaos history.

A Jepsen-style verification pass, end to end:

1. Run a seeded simulation of the replicated deployment under a shard
   brownout with history recording on -- every client operation's
   invocation/response interval, observed version and causal frontier,
   plus every authoritative version installation.
2. Replay pure offline checkers over the history: Golab-style
   Δ-atomicity (per-key supersession zones against the staleness
   budget), read-your-writes, monotonic reads, and the causal-frontier
   invariant (degraded stale-if-error serves must never advance it).
3. Run the mutation self-test: inject known guarantee breaches (an
   oversized TTL, a dropped invalidation, a frontier rollback, ...)
   into the same history and confirm the targeted checker catches each
   one -- proving the green verdicts are not vacuous.

Run with:  python examples/consistency_audit.py
"""

from __future__ import annotations

from repro.core.consistency import ConsistencyLevel
from repro.verify.checkers import run_all
from repro.verify.mutations import run_mutation_self_test
from repro.verify.scenarios import ScenarioSpec, budgets_for, run_scenario


def main() -> None:
    spec = ScenarioSpec(
        fault="brownout",
        replication_factor=3,
        consistency=ConsistencyLevel.DELTA_ATOMIC,
        seed=1142,
    )
    config = spec.build_config()
    delta_budget, degraded_budget = budgets_for(spec, config)
    print(f"scenario: {spec.name} (seed {spec.seed})")
    print(
        f"budgets:  delta={delta_budget:.2f}s  degraded={degraded_budget:.2f}s"
        "  (refresh interval + slack; stale-if-error allowance on top)"
    )
    print()

    result = run_scenario(spec)
    print(f"recorded history: {result.num_events} events")
    print()
    print(f"{'guarantee':<20} {'checked':>8} {'violations':>11}  verdict")
    print("-" * 52)
    for report in result.reports:
        verdict = "ok" if report.ok else "VIOLATED"
        print(
            f"{report.checker:<20} {report.checked:>8} "
            f"{len(report.violations):>11}  {verdict}"
        )
    max_zone = result.reports[0].stats.get("max_zone_score", 0.0)
    print()
    print(
        f"worst Δ-atomicity zone score: {max_zone:.3f}s "
        f"(budget {delta_budget:.2f}s)"
    )
    print()

    print("mutation self-test (each injected breach must be caught):")
    for outcome in result.mutations:
        verdict = "detected" if outcome.detected else "MISSED"
        fired = ", ".join(outcome.checkers_fired) or "nothing"
        print(f"  {outcome.name:<28} -> {fired:<18} {verdict}")

    print()
    if result.ok:
        print(
            "PASS: zero violations on the unmodified system and every "
            "registered mutation detected"
        )
    else:
        print("FAIL: see the verdict table above")


if __name__ == "__main__":
    main()
