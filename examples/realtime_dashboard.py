#!/usr/bin/env python3
"""Real-time dashboard: query subscriptions instead of EBF polling.

Section 3.2 of the paper mentions that clients can subscribe directly to
query result change streams (the same streams that feed the Expiring Bloom
Filter) — the right choice for applications with a well-defined critical data
set, such as dashboards.  This example runs a small operations dashboard for
an e-commerce backend:

* a subscription on "orders awaiting shipment" keeps a worklist current,
* a subscription on the "low stock" query alerts as soon as a product's
  counter drops below a threshold,
* a regular (EBF-governed) client renders the rest of the catalogue.

Run with:  python examples/realtime_dashboard.py
"""

from __future__ import annotations

from repro.caching import InvalidationCache
from repro.clock import VirtualClock
from repro.client import QuaestorClient, SubscriptionManager
from repro.core import QuaestorConfig, QuaestorServer
from repro.db import Database, Query
from repro.invalidb import InvaliDBCluster, NotificationType


def build_shop():
    clock = VirtualClock()
    database = Database(clock=clock)
    products = database.create_collection("products")
    products.create_index("category")
    for index in range(12):
        products.insert(
            {
                "_id": f"prod-{index:02d}",
                "name": f"Product {index}",
                "category": "gadgets" if index % 2 == 0 else "apparel",
                "stock": 20 + index,
                "price": 10 + index,
            }
        )
    orders = database.create_collection("orders")
    orders.create_index("status")
    server = QuaestorServer(
        database, config=QuaestorConfig(), invalidb=InvaliDBCluster(matching_nodes=4)
    )
    cdn = InvalidationCache("cdn", clock)
    server.register_purge_target(cdn)
    return clock, database, server, cdn


def main() -> None:
    clock, database, server, cdn = build_shop()

    # --- the dashboard's critical data set, kept fresh in real time. ----------------
    dashboard = SubscriptionManager(server)
    open_orders = dashboard.subscribe(
        Query("orders", {"status": "awaiting-shipment"}, sort=[("placed_at", 1)])
    )
    low_stock = dashboard.subscribe(Query("products", {"stock": {"$lt": 5}}))

    open_orders.on_change(
        lambda kind, order_id, snapshot: print(
            f"   [orders]   {kind.value:11s} {order_id}  ({len(snapshot)} awaiting shipment)"
        )
    )
    low_stock.on_change(
        lambda kind, product_id, snapshot: print(
            f"   [low-stock] {kind.value:11s} {product_id}  ({len(snapshot)} products low)"
        )
    )

    # --- a normal storefront client (EBF-governed caching). --------------------------
    storefront = QuaestorClient(server, cdn=cdn, clock=clock, refresh_interval=10.0)
    storefront.connect()
    gadgets = Query("products", {"category": "gadgets"})
    print(f"storefront gadgets page: {len(storefront.query(gadgets).value)} products "
          f"(served by {storefront.query(gadgets).level})")

    # --- business happens: orders arrive, stock drains. -------------------------------
    print("\ncustomers start ordering ...")
    for order_number in range(4):
        clock.advance(1.0)
        product_id = f"prod-{order_number:02d}"
        server.handle_insert(
            "orders",
            {
                "_id": f"order-{order_number}",
                "product": product_id,
                "status": "awaiting-shipment",
                "placed_at": clock.now(),
            },
        )
        # Each order drains the product's stock counter substantially.
        server.handle_update("products", product_id, {"$inc": {"stock": -18}})

    print("\nwarehouse ships the first two orders ...")
    for order_number in range(2):
        clock.advance(0.5)
        server.handle_update("orders", f"order-{order_number}", {"$set": {"status": "shipped"}})

    # --- final state of the dashboard. --------------------------------------------------
    print("\ndashboard state:")
    print(f"   awaiting shipment: {[doc['_id'] for doc in open_orders.result()]}")
    print(f"   low stock:         {[doc['_id'] for doc in low_stock.result()]}")
    print(f"   change events processed: orders={len(open_orders.events)}, "
          f"low-stock={len(low_stock.events)}")

    # The storefront client still enjoys plain cached reads with its Delta bound.
    print(f"\nstorefront gadgets page again: served by {storefront.query(gadgets).level}")

    dashboard.close()
    print("dashboard closed; subscriptions detached.")


if __name__ == "__main__":
    main()
