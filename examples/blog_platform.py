#!/usr/bin/env python3
"""A social blogging platform: sorted feeds, tag queries and consistency levels.

The paper's running example is a social blogging application whose clients
query posts by tag.  This example models a small editorial workflow on top of
the public API:

* readers load the front page (a sorted, limited feed -- a *stateful* query
  for InvaliDB) and tag pages,
* authors publish and edit posts,
* one "audit" reader opts into strong consistency and always sees the latest
  state, while normal readers accept the Delta-atomicity bound,
* an optimistic transaction moves a post between categories and demonstrates
  abort-on-conflict.

Run with:  python examples/blog_platform.py
"""

from __future__ import annotations

from repro.caching import InvalidationCache
from repro.clock import VirtualClock
from repro.client import QuaestorClient
from repro.core import ConsistencyLevel, QuaestorConfig, QuaestorServer
from repro.db import Database, Query
from repro.errors import TransactionAbortedError
from repro.invalidb import InvaliDBCluster


def build_platform():
    clock = VirtualClock()
    database = Database(clock=clock)
    posts = database.create_collection("posts")
    posts.create_index("category")
    for index in range(50):
        posts.insert(
            {
                "_id": f"post-{index:03d}",
                "title": f"Blog post {index}",
                "category": "tech" if index % 3 == 0 else "life",
                "tags": ["example"] if index % 5 == 0 else ["misc"],
                "likes": index % 17,
                "author": f"author-{index % 5}",
            }
        )
    server = QuaestorServer(
        database, config=QuaestorConfig(), invalidb=InvaliDBCluster(matching_nodes=4)
    )
    cdn = InvalidationCache("cdn", clock)
    server.register_purge_target(cdn)
    return clock, database, server, cdn


def main() -> None:
    clock, database, server, cdn = build_platform()

    reader = QuaestorClient(server, cdn=cdn, clock=clock, refresh_interval=5.0, name="reader")
    auditor = QuaestorClient(
        server,
        cdn=cdn,
        clock=clock,
        refresh_interval=5.0,
        consistency=ConsistencyLevel.STRONG,
        name="auditor",
    )
    author = QuaestorClient(server, cdn=cdn, clock=clock, refresh_interval=5.0, name="author")
    for client in (reader, auditor, author):
        client.connect()

    # --- the front page: a sorted, limited feed (stateful query). ----------------------
    front_page = Query("posts", {"category": "tech"}, sort=[("likes", -1)], limit=5)
    feed = reader.query(front_page)
    print("front page (top tech posts by likes):")
    for post in feed.value:
        print(f"   {post['_id']}  likes={post['likes']}")
    print(f"   served by: {feed.level}")

    # --- tag page, twice: the second load is a cache hit. --------------------------------
    tag_page = Query("posts", {"tags": "example"})
    print(f"\ntag page 1st load: {reader.query(tag_page).level}")
    print(f"tag page 2nd load: {reader.query(tag_page).level}")

    # --- an author boosts a post into the front page. -------------------------------------
    print("\nauthor gives post-001 a hundred likes ...")
    author.update("posts", "post-001", {"$set": {"category": "tech", "likes": 100}})

    clock.advance(1.0)
    stale_feed = reader.query(front_page)
    fresh_feed = auditor.query(front_page)
    print(f"reader (Delta-atomic) top post:  {stale_feed.value[0]['_id']} via {stale_feed.level}")
    print(f"auditor (strong)      top post:  {fresh_feed.value[0]['_id']} via {fresh_feed.level}")

    clock.advance(6.0)
    refreshed = reader.query(front_page)
    print(f"reader after EBF refresh:        {refreshed.value[0]['_id']} via {refreshed.level}")

    # --- read-your-writes for the author. ---------------------------------------------------
    own = author.read("posts", "post-001")
    print(f"\nauthor reads own post: likes={own.value['likes']} (read-your-writes, via {own.level})")

    # --- optimistic transaction: concurrent edit forces an abort. -----------------------------
    print("\nmoving post-002 to 'life' inside a transaction while someone edits it ...")
    txn = author.begin_transaction()
    post = txn.read("posts", "post-002")
    txn.update("posts", "post-002", {"$set": {"category": "life"}})
    # A conflicting write sneaks in before commit.
    reader.update("posts", "post-002", {"$inc": {"likes": 1}})
    try:
        txn.commit()
        print("   transaction committed (unexpected)")
    except TransactionAbortedError as error:
        print(f"   transaction aborted as expected: {error}")

    retry = author.begin_transaction()
    retry.read("posts", "post-002")
    retry.update("posts", "post-002", {"$set": {"category": "life"}})
    retry.commit()
    print("   retry committed; post-002 category:", database.get("posts", "post-002")["category"])

    print("\nserver statistics:", server.statistics())


if __name__ == "__main__":
    main()
