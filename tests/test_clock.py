"""Tests for the clock abstractions."""

from __future__ import annotations

import pytest

from repro.clock import Clock, SystemClock, VirtualClock


class TestVirtualClock:
    def test_starts_at_given_time(self):
        assert VirtualClock().now() == 0.0
        assert VirtualClock(start=5.0).now() == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            VirtualClock(start=-1.0)

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now() == 1.5
        clock.advance(0.5)
        assert clock.now() == 2.0

    def test_advance_rejects_negative_delta(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to_never_goes_backwards(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        assert clock.now() == 10.0
        clock.advance_to(5.0)
        assert clock.now() == 10.0

    def test_zero_advance_is_allowed(self):
        clock = VirtualClock()
        clock.advance(0.0)
        assert clock.now() == 0.0

    def test_satisfies_clock_protocol(self):
        assert isinstance(VirtualClock(), Clock)


class TestSystemClock:
    def test_is_monotonic_non_decreasing(self):
        clock = SystemClock()
        first = clock.now()
        second = clock.now()
        assert second >= first

    def test_satisfies_clock_protocol(self):
        assert isinstance(SystemClock(), Clock)
