"""Tests for write-rate sampling and the Poisson TTL model."""

from __future__ import annotations

import math

import pytest

from repro.ttl.poisson import (
    combined_write_rate,
    expected_time_to_next_write,
    poisson_quantile_ttl,
    query_result_ttl,
)
from repro.ttl.write_rate import WriteRateSampler


class TestWriteRateSampler:
    def test_unknown_key_uses_default_rate(self):
        sampler = WriteRateSampler(default_rate=0.01)
        assert sampler.write_rate("never-written", now=100.0) == 0.01

    def test_rate_reflects_observed_writes(self):
        sampler = WriteRateSampler(window=100.0)
        for timestamp in range(0, 50, 5):  # one write every 5 seconds
            sampler.observe_write("key", float(timestamp))
        rate = sampler.write_rate("key", now=50.0)
        assert rate == pytest.approx(0.2, rel=0.2)

    def test_hotter_keys_have_higher_rates(self):
        sampler = WriteRateSampler(window=100.0)
        for timestamp in range(0, 50, 1):
            sampler.observe_write("hot", float(timestamp))
        for timestamp in range(0, 50, 10):
            sampler.observe_write("cold", float(timestamp))
        assert sampler.write_rate("hot", 50.0) > sampler.write_rate("cold", 50.0)

    def test_old_writes_fall_out_of_window(self):
        sampler = WriteRateSampler(window=10.0, default_rate=0.001)
        sampler.observe_write("key", 0.0)
        assert sampler.write_rate("key", now=100.0) == 0.001

    def test_mean_interarrival_is_reciprocal(self):
        sampler = WriteRateSampler(default_rate=0.25)
        assert sampler.mean_interarrival("unknown", 0.0) == pytest.approx(4.0)

    def test_last_write(self):
        sampler = WriteRateSampler()
        assert sampler.last_write("key") is None
        sampler.observe_write("key", 3.0)
        sampler.observe_write("key", 7.0)
        assert sampler.last_write("key") == 7.0

    def test_bounded_history_per_key(self):
        sampler = WriteRateSampler(max_samples_per_key=10)
        for timestamp in range(100):
            sampler.observe_write("key", float(timestamp))
        assert len(sampler._samples["key"]) == 10

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            WriteRateSampler(window=0)
        with pytest.raises(ValueError):
            WriteRateSampler(max_samples_per_key=1)
        with pytest.raises(ValueError):
            WriteRateSampler(default_rate=0)
        with pytest.raises(ValueError):
            WriteRateSampler(estimation="guess")


class TestEstimationModes:
    """The window/span split the TTL bake-off measures (see module docstring)."""

    def test_span_mode_reproduces_the_legacy_formula(self):
        # Legacy: in-window count over the time since the oldest in-window
        # sample -- byte-identical to the pre-bake-off implementation.
        sampler = WriteRateSampler(window=100.0, estimation="span")
        for timestamp in (10.0, 20.0, 30.0):
            sampler.observe_write("key", timestamp)
        assert sampler.write_rate("key", now=40.0) == pytest.approx(3 / 30.0)

    def test_span_mode_lone_write_spike(self):
        # The first-observation spike the property suite flushed out: one
        # write observed just before the estimate yields a near-infinite
        # rate in span mode, but keeps the prior in window mode.
        span = WriteRateSampler(estimation="span", default_rate=0.01)
        window = WriteRateSampler(estimation="window", default_rate=0.01)
        for sampler in (span, window):
            sampler.observe_write("key", 100.0)
        assert span.write_rate("key", now=100.0) == pytest.approx(1e9)
        assert window.write_rate("key", now=100.0) == 0.01

    def test_window_mode_counts_arrivals_over_the_observed_span(self):
        sampler = WriteRateSampler(window=100.0, estimation="window")
        for timestamp in (10.0, 20.0, 30.0):
            sampler.observe_write("key", timestamp)
        # Observed span 40-10=30s capped at the window; three arrivals.
        assert sampler.write_rate("key", now=40.0) == pytest.approx(3 / 30.0)

    def test_window_mode_truncated_history_uses_the_tail_span(self):
        sampler = WriteRateSampler(window=1_000.0, max_samples_per_key=5, estimation="window")
        for timestamp in range(0, 100, 10):  # 10 writes, deque keeps 5
            sampler.observe_write("key", float(timestamp))
        # Kept samples 50..90: 4 inter-arrivals over a 50s tail span at now=100.
        assert sampler.write_rate("key", now=100.0) == pytest.approx(4 / 50.0)

    def test_estimator_specs_map_to_the_measured_modes(self):
        from repro.ttl import TTLEstimatorSpec

        assert TTLEstimatorSpec.of("quaestor").build().sampler.estimation == "span"
        assert TTLEstimatorSpec.legacy().build().sampler.estimation == "span"
        assert TTLEstimatorSpec.of("quaestor-window").build().sampler.estimation == "window"
        assert TTLEstimatorSpec.of("poisson").build().sampler.estimation == "window"
        assert TTLEstimatorSpec.of("write-rate").build().sampler.estimation == "window"


class TestPoissonModel:
    def test_quantile_formula_matches_equation_1(self):
        """TTL = -ln(1-p) / lambda (Equation 1 in the paper)."""
        rate, quantile = 0.1, 0.5
        assert poisson_quantile_ttl(rate, quantile) == pytest.approx(-math.log(0.5) / 0.1)

    def test_higher_quantile_means_longer_ttl(self):
        assert poisson_quantile_ttl(0.1, 0.9) > poisson_quantile_ttl(0.1, 0.5)

    def test_higher_write_rate_means_shorter_ttl(self):
        assert poisson_quantile_ttl(1.0, 0.5) < poisson_quantile_ttl(0.01, 0.5)

    def test_expected_time_is_mean_of_exponential(self):
        assert expected_time_to_next_write(0.25) == pytest.approx(4.0)

    def test_combined_rate_is_sum(self):
        """Minimum of independent exponentials has the summed rate."""
        assert combined_write_rate([0.1, 0.2, 0.3]) == pytest.approx(0.6)

    def test_query_ttl_shrinks_with_result_size(self):
        small = query_result_ttl([0.01] * 2, 0.5)
        large = query_result_ttl([0.01] * 50, 0.5)
        assert large < small

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            poisson_quantile_ttl(0.0, 0.5)
        with pytest.raises(ValueError):
            poisson_quantile_ttl(0.1, 1.0)
        with pytest.raises(ValueError):
            combined_write_rate([])
        with pytest.raises(ValueError):
            combined_write_rate([0.1, -0.1])
        with pytest.raises(ValueError):
            expected_time_to_next_write(0.0)
