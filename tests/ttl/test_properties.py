"""Property tests for every TTL estimator family (the bake-off's sweep axis).

Three contracts hold for *all* estimators on *any* write trace:

* estimates are finite, non-negative and inside the configured bounds;
* estimates are a pure function of the observation history (rebuilding the
  estimator and replaying the trace reproduces them exactly);
* per-key state never leaks: observations on one key do not change another
  key's estimate.

On top of that, each family's own promises are exercised: monotone response
to write-rate increases where the contract makes one (windowed write-rate /
Poisson estimates), the Alex age proportionality, the adaptive
reset/additive-increase cycle, and the windowed sampler's first-observation
and zero-interval-burst guards that the bake-off PR fixed.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.ttl import (
    AdaptiveTTLEstimator,
    AlexTTLEstimator,
    ESTIMATOR_NAMES,
    TTLBounds,
    TTLEstimatorSpec,
)
from repro.ttl.write_rate import MIN_SPAN, WriteRateSampler

BOUNDS = TTLBounds(minimum=0.5, maximum=900.0)

#: Positive inter-arrival gaps; folded into an increasing write-time trace.
gaps = st.lists(
    st.floats(min_value=1e-3, max_value=120.0, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=25,
)
estimator_names = st.sampled_from(ESTIMATOR_NAMES)


def trace_from_gaps(gap_list):
    """Fold positive gaps into increasing absolute write timestamps."""
    timestamps, now = [], 0.0
    for gap in gap_list:
        now += gap
        timestamps.append(now)
    return timestamps


def build(name: str):
    return TTLEstimatorSpec.of(name).build(bounds=BOUNDS)


def replay(estimator, timestamps, key="k"):
    for timestamp in timestamps:
        estimator.observe_write(key, timestamp)
    return estimator


class TestUniversalContracts:
    @given(name=estimator_names, gap_list=gaps)
    @settings(max_examples=60)
    def test_estimates_are_finite_and_within_bounds(self, name, gap_list):
        timestamps = trace_from_gaps(gap_list)
        estimator = replay(build(name), timestamps)
        now = (timestamps[-1] if timestamps else 0.0) + 1.0
        for estimate in (
            estimator.estimate_record("k", now),
            estimator.estimate_query("q", ["k"], now),
            estimator.estimate_query("q-empty", [], now),
        ):
            assert math.isfinite(estimate)
            assert BOUNDS.minimum <= estimate <= BOUNDS.maximum

    @given(name=estimator_names, gap_list=gaps)
    @settings(max_examples=40)
    def test_replaying_the_trace_reproduces_the_estimate(self, name, gap_list):
        timestamps = trace_from_gaps(gap_list)
        now = (timestamps[-1] if timestamps else 0.0) + 2.5
        first = replay(build(name), timestamps)
        second = replay(build(name), timestamps)
        assert first.estimate_record("k", now) == second.estimate_record("k", now)
        assert first.estimate_query("q", ["k"], now) == second.estimate_query("q", ["k"], now)

    @given(name=estimator_names, gap_list=gaps)
    @settings(max_examples=40)
    def test_no_state_leaks_between_keys(self, name, gap_list):
        timestamps = trace_from_gaps(gap_list)
        now = (timestamps[-1] if timestamps else 0.0) + 1.0
        untouched = build(name)
        baseline_record = untouched.estimate_record("other", now)
        baseline_query = untouched.estimate_query("other-q", ["other"], now)

        noisy = replay(build(name), timestamps, key="hot")
        noisy.observe_query_invalidation("hot-q", 3.0, now)
        assert noisy.estimate_record("other", now) == baseline_record
        assert noisy.estimate_query("other-q", ["other"], now) == baseline_query


class TestWindowedSamplerContracts:
    """The contracts the bake-off PR fixed in ``estimation="window"`` mode."""

    @given(first_write=st.floats(min_value=0.0, max_value=1_000.0))
    @settings(max_examples=30)
    def test_single_write_keeps_the_default_rate_prior(self, first_write):
        # Regression: span mode turns one lone write into a quasi-infinite
        # rate; one arrival is an existence proof, not a rate.
        sampler = WriteRateSampler(estimation="window")
        sampler.observe_write("k", first_write)
        assert sampler.write_rate("k", first_write) == sampler.default_rate
        assert sampler.write_rate("k", first_write + 0.01) == sampler.default_rate

    @given(burst=st.integers(min_value=2, max_value=40))
    @settings(max_examples=30)
    def test_zero_interval_burst_is_rate_capped(self, burst):
        # Regression: a batch of writes sharing one timestamp must not
        # produce an unbounded rate; the MIN_SPAN floor caps it.
        sampler = WriteRateSampler(estimation="window")
        for _ in range(burst):
            sampler.observe_write("k", 50.0)
        rate = sampler.write_rate("k", 50.0)
        assert math.isfinite(rate)
        assert rate <= burst / MIN_SPAN

    @given(
        arrivals=st.integers(min_value=3, max_value=30),
        slow_gap=st.floats(min_value=2.0, max_value=60.0),
        compression=st.floats(min_value=1.1, max_value=20.0),
    )
    @settings(max_examples=40)
    def test_writing_faster_never_lowers_the_windowed_rate(
        self, arrivals, slow_gap, compression
    ):
        fast_gap = slow_gap / compression
        slow = WriteRateSampler(estimation="window")
        fast = WriteRateSampler(estimation="window")
        for index in range(arrivals):
            slow.observe_write("k", index * slow_gap)
            fast.observe_write("k", index * fast_gap)
        slow_rate = slow.write_rate("k", (arrivals - 1) * slow_gap + slow_gap)
        fast_rate = fast.write_rate("k", (arrivals - 1) * fast_gap + fast_gap)
        assert fast_rate >= slow_rate

    @given(
        arrivals=st.integers(min_value=3, max_value=30),
        slow_gap=st.floats(min_value=2.0, max_value=60.0),
        compression=st.floats(min_value=1.1, max_value=20.0),
        name=st.sampled_from(["write-rate", "poisson", "quaestor-window"]),
    )
    @settings(max_examples=40)
    def test_faster_writes_never_lengthen_the_record_ttl(
        self, arrivals, slow_gap, compression, name
    ):
        fast_gap = slow_gap / compression
        slow = build(name)
        fast = build(name)
        for index in range(arrivals):
            slow.observe_write("k", index * slow_gap)
            fast.observe_write("k", index * fast_gap)
        slow_ttl = slow.estimate_record("k", (arrivals - 1) * slow_gap + slow_gap)
        fast_ttl = fast.estimate_record("k", (arrivals - 1) * fast_gap + fast_gap)
        assert fast_ttl <= slow_ttl


class TestFamilyContracts:
    @given(gap_list=gaps, ttl=st.floats(min_value=0.0, max_value=2_000.0))
    @settings(max_examples=30)
    def test_static_ignores_every_observation(self, gap_list, ttl):
        from repro.ttl.static import StaticTTLEstimator

        estimator = StaticTTLEstimator(ttl=ttl, bounds=BOUNDS)
        timestamps = trace_from_gaps(gap_list)
        replay(estimator, timestamps)
        now = (timestamps[-1] if timestamps else 0.0) + 1.0
        assert estimator.estimate_record("k", now) == BOUNDS.clamp(ttl)
        assert estimator.estimate_query("q", ["k"], now) == BOUNDS.clamp(ttl)

    @given(
        age_young=st.floats(min_value=0.0, max_value=500.0),
        extra=st.floats(min_value=0.1, max_value=500.0),
    )
    @settings(max_examples=40)
    def test_alex_ttl_grows_with_age_up_to_the_cap(self, age_young, extra):
        estimator = AlexTTLEstimator(bounds=BOUNDS)
        estimator.observe_write("k", 0.0)
        young = estimator.estimate_record("k", age_young)
        old = estimator.estimate_record("k", age_young + extra)
        assert young <= old
        assert old <= BOUNDS.clamp(estimator.cap)

    @given(rounds=st.integers(min_value=1, max_value=20))
    @settings(max_examples=30)
    def test_adaptive_increases_then_resets(self, rounds):
        estimator = AdaptiveTTLEstimator(bounds=BOUNDS)
        now = 0.0
        previous = estimator.estimate_query("q", [], now)
        for _ in range(rounds):
            estimator.observe_unchanged("q")
            current = estimator.estimate_query("q", [], now)
            assert current >= previous
            previous = current
        estimator.observe_changed("q")
        assert estimator.estimate_query("q", [], now) == BOUNDS.clamp(estimator.minimum_ttl)

    @given(
        low=st.floats(min_value=0.05, max_value=0.45),
        high=st.floats(min_value=0.55, max_value=0.95),
        gap_list=gaps,
    )
    @settings(max_examples=30)
    def test_poisson_quantile_is_monotone_in_risk(self, low, high, gap_list):
        timestamps = trace_from_gaps(gap_list)
        now = (timestamps[-1] if timestamps else 0.0) + 1.0
        conservative = replay(TTLEstimatorSpec.of("poisson", quantile=low).build(bounds=BOUNDS), timestamps)
        optimistic = replay(TTLEstimatorSpec.of("poisson", quantile=high).build(bounds=BOUNDS), timestamps)
        assert conservative.estimate_record("k", now) <= optimistic.estimate_record("k", now)

    @given(
        actuals=st.lists(
            st.floats(min_value=0.0, max_value=800.0), min_size=1, max_size=10
        )
    )
    @settings(max_examples=40)
    def test_quaestor_query_estimate_tracks_the_ewma_refinement(self, actuals):
        estimator = build("quaestor")
        # Seed the prior, then feed observed actual TTLs; the estimate must
        # stay the clamped EWMA of what was fed in (Equation 2).
        estimator.estimate_query("q", [], 0.0)
        alpha = 0.7
        ewma = estimator.current_query_estimate("q")
        for actual in actuals:
            estimator.observe_query_invalidation("q", actual, 0.0)
            ewma = alpha * ewma + (1.0 - alpha) * max(0.0, actual)
        assert estimator.estimate_query("q", [], 0.0) == pytest.approx(BOUNDS.clamp(ewma))

    @given(members=st.integers(min_value=1, max_value=20), gap=st.floats(min_value=0.5, max_value=30.0))
    @settings(max_examples=30)
    def test_query_ttl_never_exceeds_its_hottest_member(self, members, gap):
        # Minimum of exponentials: the combined rate dominates each member's,
        # so the query estimate cannot outlive any single member's estimate.
        estimator = build("poisson")
        keys = [f"k{index}" for index in range(members)]
        for key in keys:
            for index in range(5):
                estimator.observe_write(key, index * gap)
        now = 5 * gap
        query_ttl = estimator.estimate_query("q", keys, now)
        member_ttls = [estimator.estimate_record(key, now) for key in keys]
        assert query_ttl <= min(member_ttls) + 1e-9
