"""Tests for the TTL estimators (Quaestor's and the baselines)."""

from __future__ import annotations

import pytest

from repro.ttl import (
    AdaptiveTTLEstimator,
    AlexTTLEstimator,
    EwmaTracker,
    QuaestorTTLEstimator,
    StaticTTLEstimator,
    TTLBounds,
)


class TestTTLBounds:
    def test_clamping(self):
        bounds = TTLBounds(minimum=5.0, maximum=100.0)
        assert bounds.clamp(1.0) == 5.0
        assert bounds.clamp(50.0) == 50.0
        assert bounds.clamp(1000.0) == 100.0

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            TTLBounds(minimum=-1.0)
        with pytest.raises(ValueError):
            TTLBounds(minimum=10.0, maximum=5.0)


class TestEwmaTracker:
    def test_first_observation_is_taken_verbatim(self):
        tracker = EwmaTracker(alpha=0.7)
        assert tracker.update("q", 100.0) == 100.0

    def test_blending_follows_equation_2(self):
        """ttl_new = alpha * ttl_old + (1 - alpha) * ttl_actual."""
        tracker = EwmaTracker(alpha=0.7)
        tracker.update("q", 100.0)
        assert tracker.update("q", 10.0) == pytest.approx(0.7 * 100.0 + 0.3 * 10.0)

    def test_seed_does_not_overwrite(self):
        tracker = EwmaTracker()
        tracker.seed("q", 50.0)
        tracker.seed("q", 10.0)
        assert tracker.get("q") == 50.0

    def test_forget(self):
        tracker = EwmaTracker()
        tracker.update("q", 1.0)
        tracker.forget("q")
        assert tracker.get("q") is None
        assert "q" not in tracker

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            EwmaTracker(alpha=1.0)
        tracker = EwmaTracker()
        with pytest.raises(ValueError):
            tracker.update("q", -1.0)


class TestQuaestorEstimator:
    def test_record_ttl_shrinks_with_write_rate(self):
        estimator = QuaestorTTLEstimator(bounds=TTLBounds(minimum=0.1, maximum=10_000.0))
        for timestamp in range(0, 100, 2):
            estimator.observe_write("record:hot", float(timestamp))
        hot = estimator.estimate_record("record:hot", now=100.0)
        cold = estimator.estimate_record("record:cold", now=100.0)
        assert hot < cold

    def test_query_estimate_uses_member_rates(self):
        estimator = QuaestorTTLEstimator(bounds=TTLBounds(minimum=0.1, maximum=10_000.0))
        for timestamp in range(0, 100, 2):
            estimator.observe_write("record:hot", float(timestamp))
        hot_query = estimator.estimate_query("query:hot", ["record:hot"], now=100.0)
        cold_query = estimator.estimate_query("query:cold", ["record:cold"], now=100.0)
        assert hot_query < cold_query

    def test_invalidation_feedback_moves_estimate_toward_actual(self):
        estimator = QuaestorTTLEstimator(alpha=0.5, bounds=TTLBounds(minimum=0.1, maximum=10_000.0))
        initial = estimator.estimate_query("query:q", [], now=0.0)
        for _ in range(10):
            estimator.observe_query_invalidation("query:q", actual_ttl=5.0, timestamp=0.0)
        refined = estimator.estimate_query("query:q", [], now=0.0)
        assert abs(refined - 5.0) < abs(initial - 5.0)

    def test_estimates_respect_bounds(self):
        bounds = TTLBounds(minimum=2.0, maximum=30.0)
        estimator = QuaestorTTLEstimator(bounds=bounds)
        for timestamp in range(0, 100):
            estimator.observe_write("record:veryhot", float(timestamp) / 10.0)
        assert estimator.estimate_record("record:veryhot", now=10.0) >= 2.0
        assert estimator.estimate_record("record:nevertouched", now=10.0) <= 30.0

    def test_expected_value_mode(self):
        quantile_based = QuaestorTTLEstimator(quantile=0.9)
        mean_based = QuaestorTTLEstimator(use_expected_value=True)
        assert mean_based.estimate_record("r", 0.0) != quantile_based.estimate_record("r", 0.0)

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            QuaestorTTLEstimator(quantile=0.0)

    def test_current_query_estimate_exposed(self):
        estimator = QuaestorTTLEstimator()
        assert estimator.current_query_estimate("query:q") is None
        estimator.estimate_query("query:q", [], now=0.0)
        assert estimator.current_query_estimate("query:q") is not None


class TestBaselines:
    def test_static_estimator_is_constant(self):
        estimator = StaticTTLEstimator(ttl=42.0, bounds=TTLBounds(minimum=1.0, maximum=100.0))
        assert estimator.estimate_record("a", 0.0) == 42.0
        assert estimator.estimate_query("q", ["a", "b"], 0.0) == 42.0

    def test_static_estimator_clamped(self):
        estimator = StaticTTLEstimator(ttl=1000.0, bounds=TTLBounds(minimum=1.0, maximum=60.0))
        assert estimator.estimate_record("a", 0.0) == 60.0

    def test_alex_unmodified_resources_get_cap(self):
        estimator = AlexTTLEstimator(percentage=0.2, cap=300.0, bounds=TTLBounds(0.0, 1000.0))
        assert estimator.estimate_record("never-modified", now=50.0) == 300.0

    def test_alex_ttl_is_fraction_of_age(self):
        estimator = AlexTTLEstimator(percentage=0.2, cap=300.0, bounds=TTLBounds(0.0, 1000.0))
        estimator.observe_write("record:r", timestamp=0.0)
        assert estimator.estimate_record("record:r", now=100.0) == pytest.approx(20.0)

    def test_alex_cap_applies(self):
        estimator = AlexTTLEstimator(percentage=0.5, cap=30.0, bounds=TTLBounds(0.0, 1000.0))
        estimator.observe_write("record:r", timestamp=0.0)
        assert estimator.estimate_record("record:r", now=1000.0) == 30.0

    def test_alex_query_uses_most_recently_modified_member(self):
        estimator = AlexTTLEstimator(percentage=0.2, cap=300.0, bounds=TTLBounds(0.0, 1000.0))
        estimator.observe_write("old", timestamp=0.0)
        estimator.observe_write("new", timestamp=90.0)
        ttl = estimator.estimate_query("q", ["old", "new"], now=100.0)
        assert ttl == pytest.approx(0.2 * 10.0)

    def test_adaptive_increases_when_unchanged(self):
        estimator = AdaptiveTTLEstimator(minimum_ttl=5.0, increment=10.0, bounds=TTLBounds(0.0, 1000.0))
        assert estimator.estimate_query("q", [], 0.0) == 5.0
        estimator.observe_unchanged("q")
        assert estimator.estimate_query("q", [], 0.0) == 15.0
        estimator.observe_unchanged("q")
        assert estimator.estimate_query("q", [], 0.0) == 25.0

    def test_adaptive_resets_on_change(self):
        estimator = AdaptiveTTLEstimator(minimum_ttl=5.0, increment=10.0, bounds=TTLBounds(0.0, 1000.0))
        estimator.observe_unchanged("q")
        estimator.observe_changed("q")
        assert estimator.estimate_query("q", [], 0.0) == 5.0

    def test_adaptive_treats_invalidation_as_change(self):
        estimator = AdaptiveTTLEstimator(minimum_ttl=5.0, increment=10.0, bounds=TTLBounds(0.0, 1000.0))
        estimator.observe_unchanged("q")
        estimator.observe_query_invalidation("q", actual_ttl=3.0, timestamp=0.0)
        assert estimator.estimate_query("q", [], 0.0) == 5.0

    def test_baseline_validation(self):
        with pytest.raises(ValueError):
            StaticTTLEstimator(ttl=-1.0)
        with pytest.raises(ValueError):
            AlexTTLEstimator(percentage=0.0)
        with pytest.raises(ValueError):
            AdaptiveTTLEstimator(minimum_ttl=0.0)
