"""Golden-vector tests: every estimator's output on one fixed write trace.

The trace drives three keys at clearly different rates (hot: every 2 s, warm:
every 15 s, cold: a single write) plus two query-invalidation feedback events,
then reads seven estimates off each registered estimator family.  The pinned
floats were produced by the implementations at the time of the TTL bake-off
PR and must match *exactly* -- any estimator change shows up here first, as
an auditable diff of concrete TTL values rather than a shifted simulation
summary.

The vectors also document the one behavioural split the bake-off measured:
``quaestor`` (span sampler, the winner and default, aliased by
``quaestor-legacy``) derives a rate from ``cold``'s lone write
(``record_cold`` = 19.4 s), while ``quaestor-window`` / ``poisson`` /
``write-rate`` keep the default-rate prior for a single observation
(``record_cold`` = prior).
"""

from __future__ import annotations

import pytest

from repro.ttl import ESTIMATOR_NAMES, TTLBounds, TTLEstimatorSpec

BOUNDS = TTLBounds(minimum=0.1, maximum=3600.0)

GOLDEN_VECTORS = {
    "static": {
        "record_hot": 60.0,
        "record_warm": 60.0,
        "record_cold": 60.0,
        "record_unseen": 60.0,
        "query_mixed": 60.0,
        "query_cold": 60.0,
        "query_empty": 60.0,
    },
    "alex": {
        "record_hot": 4.2,
        "record_warm": 0.2,
        "record_cold": 5.6000000000000005,
        "record_unseen": 300.0,
        "query_mixed": 0.2,
        "query_cold": 5.6000000000000005,
        "query_empty": 300.0,
    },
    "adaptive": {
        "record_hot": 5.0,
        "record_warm": 5.0,
        "record_cold": 5.0,
        "record_unseen": 5.0,
        "query_mixed": 5.0,
        "query_cold": 5.0,
        "query_empty": 5.0,
    },
    "write-rate": {
        "record_hot": 2.95,
        "record_warm": 11.5,
        "record_cold": 600.0,
        "record_unseen": 600.0,
        "query_mixed": 2.347750865051903,
        "query_cold": 600.0,
        "query_empty": 600.0,
    },
    "poisson": {
        "record_hot": 2.0447841826518385,
        "record_warm": 7.971192576439371,
        "record_cold": 415.88830833596717,
        "record_unseen": 415.88830833596717,
        "query_mixed": 1.6273368927678993,
        "query_cold": 415.88830833596717,
        "query_empty": 415.88830833596717,
    },
    "quaestor": {
        "record_hot": 2.0447841826518385,
        "record_warm": 7.971192576439371,
        "record_cold": 19.408121055678468,
        "record_unseen": 415.88830833596717,
        "query_mixed": 4.10753670055951,
        "query_cold": 19.408121055678468,
        "query_empty": 415.88830833596717,
    },
    "quaestor-window": {
        "record_hot": 2.0447841826518385,
        "record_warm": 7.971192576439371,
        "record_cold": 415.88830833596717,
        "record_unseen": 415.88830833596717,
        "query_mixed": 4.10753670055951,
        "query_cold": 415.88830833596717,
        "query_empty": 415.88830833596717,
    },
    "quaestor-legacy": {
        "record_hot": 2.0447841826518385,
        "record_warm": 7.971192576439371,
        "record_cold": 19.408121055678468,
        "record_unseen": 415.88830833596717,
        "query_mixed": 4.10753670055951,
        "query_cold": 19.408121055678468,
        "query_empty": 415.88830833596717,
    },
}


def run_trace(name: str):
    estimator = TTLEstimatorSpec.of(name).build(bounds=BOUNDS)
    for index in range(20):
        estimator.observe_write("hot", 2.0 * (index + 1))
    for index in range(4):
        estimator.observe_write("warm", 15.0 * (index + 1))
    estimator.observe_write("cold", 33.0)
    estimator.estimate_query("q1", ["hot", "warm"], 45.0)
    estimator.observe_query_invalidation("q1", 4.0, 50.0)
    estimator.observe_query_invalidation("q1", 9.0, 58.0)
    now = 61.0
    return {
        "record_hot": estimator.estimate_record("hot", now),
        "record_warm": estimator.estimate_record("warm", now),
        "record_cold": estimator.estimate_record("cold", now),
        "record_unseen": estimator.estimate_record("unseen", now),
        "query_mixed": estimator.estimate_query("q1", ["hot", "warm"], now),
        "query_cold": estimator.estimate_query("q2", ["cold"], now),
        "query_empty": estimator.estimate_query("q3", [], now),
    }


class TestGoldenVectors:
    def test_every_registered_estimator_is_pinned(self):
        assert set(GOLDEN_VECTORS) == set(ESTIMATOR_NAMES)

    @pytest.mark.parametrize("name", sorted(GOLDEN_VECTORS))
    def test_estimates_match_the_pinned_vector_exactly(self, name):
        assert run_trace(name) == GOLDEN_VECTORS[name]

    def test_legacy_alias_is_byte_identical_to_the_default(self):
        """quaestor-legacy freezes today's default; they must coincide until
        the default is deliberately retuned (at which point the alias keeps
        the old numbers and this test is updated)."""
        assert run_trace("quaestor-legacy") == run_trace("quaestor")

    def test_window_and_span_samplers_split_on_the_lone_write(self):
        span = run_trace("quaestor")
        window = run_trace("quaestor-window")
        # Identical on multi-write keys, different on the single-write key:
        # span derives a rate from one observation, window keeps the prior.
        assert span["record_hot"] == window["record_hot"]
        assert span["record_warm"] == window["record_warm"]
        assert span["record_cold"] != window["record_cold"]
