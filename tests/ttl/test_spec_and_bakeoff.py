"""Tests for the estimator registry knob, phased workloads and the bake-off.

Covers the full selection path the bake-off sweeps over: ``TTLEstimatorSpec``
-> ``QuaestorConfig.build_ttl_estimator`` -> ``QuaestorServer`` ->
``SimulationConfig.ttl_estimator`` (single server and sharded cluster), plus
the :class:`~repro.workloads.PhasedWorkloadGenerator` that drives the
drifting and bursty scenarios, and a CI-sized end-to-end bake-off cell.
"""

from __future__ import annotations

import pytest

from repro.core import QuaestorConfig, QuaestorServer
from repro.db import Database
from repro.errors import ConfigurationError
from repro.simulation import CachingMode, SimulationConfig, Simulator
from repro.ttl import (
    DEFAULT_ESTIMATOR,
    ESTIMATOR_NAMES,
    LEGACY_ESTIMATOR,
    QuaestorTTLEstimator,
    StaticTTLEstimator,
    TTLEstimatorSpec,
    build_estimator,
)
from repro.ttl.bakeoff import (
    BakeoffScenario,
    bakeoff_scenarios,
    run_bakeoff,
    run_cell,
    scenario_config,
)
from repro.workloads import (
    DatasetSpec,
    PhasedWorkloadGenerator,
    WorkloadSpec,
    generate_dataset,
)


class TestTTLEstimatorSpec:
    def test_default_spec_selects_the_bakeoff_winner(self):
        assert TTLEstimatorSpec().name == DEFAULT_ESTIMATOR
        assert DEFAULT_ESTIMATOR in ESTIMATOR_NAMES

    def test_unknown_name_is_rejected(self):
        with pytest.raises(ValueError):
            TTLEstimatorSpec(name="nonsense")

    def test_params_must_come_from_of(self):
        with pytest.raises(ValueError):
            TTLEstimatorSpec(name="static", params=[("ttl", 5.0)])

    def test_spec_is_hashable_and_param_order_independent(self):
        a = TTLEstimatorSpec.of("static", ttl=5.0, window=10.0)
        b = TTLEstimatorSpec.of("static", window=10.0, ttl=5.0)
        assert a == b
        assert hash(a) == hash(b)

    def test_of_params_reach_the_estimator(self):
        estimator = TTLEstimatorSpec.of("static", ttl=42.0).build()
        assert isinstance(estimator, StaticTTLEstimator)
        assert estimator.ttl == 42.0

    def test_every_registered_name_builds(self):
        for name in ESTIMATOR_NAMES:
            spec = TTLEstimatorSpec.of(name)
            estimator = spec.build()
            assert estimator.estimate_record("k", 1.0) > 0.0

    def test_legacy_spec_is_the_frozen_alias(self):
        spec = TTLEstimatorSpec.legacy()
        assert spec.name == LEGACY_ESTIMATOR
        estimator = spec.build()
        assert isinstance(estimator, QuaestorTTLEstimator)
        assert estimator.sampler.estimation == "span"

    def test_build_estimator_convenience_wrapper(self):
        estimator = build_estimator("poisson", ttl_quantile=0.8)
        assert estimator.quantile == 0.8


class TestConfigIntegration:
    def test_config_builds_the_selected_estimator(self):
        config = QuaestorConfig(ttl_estimator=TTLEstimatorSpec.of("static", ttl=7.0))
        estimator = config.build_ttl_estimator()
        assert isinstance(estimator, StaticTTLEstimator)
        assert estimator.bounds == config.ttl_bounds

    def test_config_quantile_and_alpha_flow_into_the_default(self):
        config = QuaestorConfig(ttl_quantile=0.9, ewma_alpha=0.5)
        estimator = config.build_ttl_estimator()
        assert estimator.quantile == 0.9
        assert estimator._query_ewma.alpha == 0.5

    def test_config_rejects_non_spec_values(self):
        with pytest.raises(ConfigurationError):
            QuaestorConfig(ttl_estimator="quaestor")

    def test_server_uses_the_configured_estimator(self):
        config = QuaestorConfig(ttl_estimator=TTLEstimatorSpec.of("static", ttl=9.0))
        server = QuaestorServer(Database(), config=config)
        assert isinstance(server.ttl_estimator, StaticTTLEstimator)
        assert server.ttl_estimator.ttl == 9.0


class TestSimulatorIntegration:
    def _config(self, **overrides):
        defaults = dict(
            mode=CachingMode.QUAESTOR,
            dataset=DatasetSpec(num_tables=1, documents_per_table=60, queries_per_table=8),
            num_clients=2,
            connections_per_client=10,
            matching_nodes=2,
            max_operations=600,
            seed=5,
        )
        defaults.update(overrides)
        return SimulationConfig(**defaults)

    def test_spec_overrides_the_server_estimator(self):
        simulator = Simulator(self._config(ttl_estimator=TTLEstimatorSpec.of("static")))
        assert isinstance(simulator.server.ttl_estimator, StaticTTLEstimator)

    def test_spec_reaches_every_shard_of_a_cluster(self):
        simulator = Simulator(
            self._config(num_shards=2, ttl_estimator=TTLEstimatorSpec.of("static"))
        )
        for shard in simulator.cluster.shards:
            assert isinstance(shard.server.ttl_estimator, StaticTTLEstimator)

    def test_spec_overrides_even_the_uncached_mode_substitution(self):
        simulator = Simulator(
            self._config(
                mode=CachingMode.UNCACHED, ttl_estimator=TTLEstimatorSpec.of("static")
            )
        )
        assert isinstance(simulator.server.ttl_estimator, StaticTTLEstimator)

    def test_invalid_spec_type_is_rejected(self):
        with pytest.raises(ConfigurationError):
            self._config(ttl_estimator="static")

    def test_phased_workload_runs_and_advances_phases(self):
        phases = (
            (200, WorkloadSpec.with_update_rate(0.02, seed=5)),
            (200, WorkloadSpec.with_update_rate(0.3, seed=5)),
        )
        simulator = Simulator(self._config(workload_phases=phases, max_operations=600))
        assert isinstance(simulator.workload, PhasedWorkloadGenerator)
        simulator.run()
        # 600 operations drew through both 200-op budgets into the open tail.
        assert simulator.workload.phase_index == 1

    def test_empty_phases_are_rejected(self):
        with pytest.raises(ConfigurationError):
            self._config(workload_phases=())
        with pytest.raises(ConfigurationError):
            self._config(workload_phases=((0, WorkloadSpec.read_heavy()),))


def fingerprint(operation):
    """Identity of one sampled operation (type + target) for stream equality."""
    query_key = operation.query.cache_key if operation.query is not None else None
    return (operation.type, operation.collection, operation.document_id, query_key)


class TestPhasedWorkloadGenerator:
    @pytest.fixture()
    def dataset(self):
        return generate_dataset(
            DatasetSpec(num_tables=1, documents_per_table=40, queries_per_table=6)
        )

    def test_stream_is_deterministic(self, dataset):
        phases = [
            (50, WorkloadSpec.with_update_rate(0.1, seed=3)),
            (50, WorkloadSpec.with_update_rate(0.5, seed=4)),
        ]
        first = PhasedWorkloadGenerator(phases, dataset).operations(150)
        second = PhasedWorkloadGenerator(phases, dataset).operations(150)
        assert [fingerprint(op) for op in first] == [fingerprint(op) for op in second]

    def test_chunked_and_single_sampling_agree(self, dataset):
        phases = [
            (30, WorkloadSpec.with_update_rate(0.1, seed=3)),
            (45, WorkloadSpec.with_update_rate(0.5, seed=4)),
        ]
        chunked = PhasedWorkloadGenerator(phases, dataset).operations(100)
        generator = PhasedWorkloadGenerator(phases, dataset)
        one_by_one = [generator.next_operation() for _ in range(100)]
        # Both paths must respect the same phase boundaries and RNG streams.
        assert [fingerprint(op) for op in chunked] == [fingerprint(op) for op in one_by_one]

    def test_next_operations_never_crosses_a_phase_boundary(self, dataset):
        phases = [
            (10, WorkloadSpec.with_update_rate(0.1, seed=3)),
            (10, WorkloadSpec.with_update_rate(0.5, seed=4)),
        ]
        generator = PhasedWorkloadGenerator(phases, dataset)
        batch = generator.next_operations(25)
        assert len(batch) == 10  # capped at the first phase's remaining budget
        assert generator.phase_index == 0
        generator.next_operations(10)
        assert generator.phase_index == 1

    def test_final_phase_is_open_ended(self, dataset):
        generator = PhasedWorkloadGenerator(
            [(5, WorkloadSpec.with_update_rate(0.1, seed=3))], dataset
        )
        assert len(generator.operations(40)) == 40
        assert generator.phase_index == 0

    def test_write_mix_shifts_across_phases(self, dataset):
        from repro.workloads import OperationType

        phases = [
            (400, WorkloadSpec.with_update_rate(0.02, seed=3)),
            (400, WorkloadSpec.with_update_rate(0.5, seed=3)),
        ]
        generator = PhasedWorkloadGenerator(phases, dataset)
        first = generator.operations(400)
        second = generator.operations(400)

        def update_share(batch):
            return sum(1 for op in batch if op.type is OperationType.UPDATE) / len(batch)

        assert update_share(first) < 0.1
        assert update_share(second) > 0.3

    def test_invalid_phases_are_rejected(self, dataset):
        with pytest.raises(ConfigurationError):
            PhasedWorkloadGenerator([], dataset)
        with pytest.raises(ConfigurationError):
            PhasedWorkloadGenerator([(0, WorkloadSpec.read_heavy())], dataset)


class TestBakeoff:
    def test_scenarios_cover_the_three_write_processes(self):
        scenarios = bakeoff_scenarios(max_operations=800, seed=17)
        names = [scenario.name for scenario in scenarios]
        assert names == ["stationary", "drifting", "bursty"]
        stationary, drifting, bursty = scenarios
        assert stationary.is_stationary
        assert len(drifting.phases) == 6
        assert len(bursty.phases) == 8
        # The drift ramps monotonically; the bursts alternate off/on.
        drift_rates = [spec.update_proportion for _, spec in drifting.phases]
        assert drift_rates == sorted(drift_rates)
        burst_rates = [spec.update_proportion for _, spec in bursty.phases]
        assert burst_rates[::2] == [pytest.approx(0.01)] * 4
        assert burst_rates[1::2] == [pytest.approx(0.40)] * 4

    def test_scenario_config_wires_spec_and_phases(self):
        scenario = bakeoff_scenarios(max_operations=800, seed=17)[1]
        config = scenario_config(scenario, TTLEstimatorSpec.of("static"), 800, 17)
        assert config.ttl_estimator == TTLEstimatorSpec.of("static")
        assert config.workload_phases == scenario.phases

    def test_cell_metrics_are_complete_and_sane(self):
        scenario = bakeoff_scenarios(max_operations=400, seed=17)[0]
        cell = run_cell(scenario, "quaestor", max_operations=400, seed=17)
        for metric in (
            "cache_hit_rate",
            "stale_rate",
            "invalidations_per_1k_ops",
            "ebf_fill_ratio",
            "quality_score",
        ):
            assert metric in cell
        assert 0.0 <= cell["cache_hit_rate"] <= 1.0
        assert 0.0 <= cell["stale_rate"] <= 1.0
        assert cell["quality_score"] == pytest.approx(
            cell["cache_hit_rate"] * (1.0 - cell["stale_rate"])
        )

    def test_run_bakeoff_is_deterministic_and_ranks_all_estimators(self):
        kwargs = dict(max_operations=300, seed=17, estimators=("static", "quaestor"))
        first = run_bakeoff(**kwargs)
        second = run_bakeoff(**kwargs)
        assert first == second
        assert {entry["estimator"] for entry in first["ranking"]} == {"static", "quaestor"}
        assert first["winner"]["estimator"] == first["ranking"][0]["estimator"]
        assert set(first["scenarios"]) == {"stationary", "drifting", "bursty"}

    def test_unknown_estimator_is_rejected(self):
        with pytest.raises(ValueError):
            run_bakeoff(max_operations=300, estimators=("nonsense",))
