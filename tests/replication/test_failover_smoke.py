"""Failure-scenario smoke: seeded crash + recover inside a full simulation.

This is the CI gate for the acceptance criteria of the replication
subsystem: a seeded crash-and-recover run completes with zero uncaught
exceptions, reports bounded unavailability in its summary, stays within the
configured staleness budget, and is bit-for-bit deterministic for a fixed
seed.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultAction, FaultPlan
from repro.simulation import CachingMode, SimulationConfig, Simulator
from repro.workloads import DatasetSpec, WorkloadSpec


def crash_recover_config(seed: int = 13) -> SimulationConfig:
    return SimulationConfig(
        mode=CachingMode.QUAESTOR,
        # 10 % updates: enough writes land inside the short outage window
        # that the measured error rate is deterministically non-zero.
        workload=WorkloadSpec.with_update_rate(0.10),
        dataset=DatasetSpec(num_tables=2, documents_per_table=200, queries_per_table=20),
        num_clients=4,
        connections_per_client=25,
        ebf_refresh_interval=1.0,
        matching_nodes=2,
        duration=60.0,
        # No warm-up: the outage must land inside the *measured* phase, so
        # the reported error rate genuinely covers the crash window.
        warmup_fraction=0.0,
        max_operations=4_000,
        seed=seed,
        num_shards=2,
        replication_factor=2,
        # Crash early so the outage, the failover and the recovery all land
        # inside the simulated window regardless of achieved throughput.
        fault_plan=FaultPlan.primary_crash(shard=0, at=0.02, recover_at=0.12),
        failover_detection_delay=0.03,
    )


class TestCrashRecoverScenario:
    def test_completes_with_bounded_unavailability_and_staleness(self):
        config = crash_recover_config()
        simulator = Simulator(config)
        result = simulator.run()  # zero uncaught exceptions == reaching here
        summary = result.summary()

        # The availability metrics are measured and bounded: the outage
        # rejects *some* requests (writes and the pre-failover window -- the
        # rate must not be structurally zero, which would mean the outage
        # fell outside the measured phase), but only a small fraction of the
        # run may fail.
        assert 0.0 < summary["request_error_rate"] < 0.05

        # The fault plan actually fired: crash, failover, recovery.
        actions = [entry["action"] for entry in simulator.fault_injector.timeline]
        assert actions.count("crash") == 1
        assert "failover" in actions
        assert "recover" in actions

        # Replica reads happened (the read path really is replicated).
        assert summary["replica_read_share"] > 0.0

        # Staleness stays within the configured budget: Delta (the EBF
        # refresh interval) plus the CDN invalidation delay, the replication
        # lag and the failover detection window, with jitter headroom.
        topology = config.topology
        budget = (
            config.ebf_refresh_interval
            + topology.invalidation_delay.mean
            + 5 * topology.invalidation_delay.jitter
            + topology.replication_lag.mean
            + 5 * topology.replication_lag.jitter
            + config.failover_detection_delay
        )
        assert summary["max_staleness_s"] <= budget

    def test_summary_is_deterministic_for_a_fixed_seed(self):
        first = Simulator(crash_recover_config()).run().summary()
        second = Simulator(crash_recover_config()).run().summary()
        assert first == second

    def test_different_seed_changes_the_interleaving_but_still_completes(self):
        result = Simulator(crash_recover_config(seed=29)).run()
        assert result.operations > 0
        assert result.summary()["request_error_rate"] < 0.05

    def test_chaos_plan_is_reproducible_and_survivable(self):
        plan_a = FaultPlan.chaos(
            duration=0.5, seed=7, mean_interval=0.1, downtime=0.05,
            num_shards=2, replication_factor=2,
        )
        plan_b = FaultPlan.chaos(
            duration=0.5, seed=7, mean_interval=0.1, downtime=0.05,
            num_shards=2, replication_factor=2,
        )
        assert plan_a.events == plan_b.events
        assert len(plan_a) > 0

        config = crash_recover_config()
        config.fault_plan = plan_a
        result = Simulator(config).run()
        assert result.operations > 0


class TestFaultPlanConstruction:
    def test_events_are_sorted_by_time(self):
        plan = FaultPlan(
            events=[
                # Deliberately out of order.
                FaultPlan.primary_crash(at=30.0).events[0],
                FaultPlan.primary_crash(at=10.0).events[0],
            ]
        )
        times = [event.time for event in plan.events]
        assert times == sorted(times)

    def test_primary_crash_recover_must_follow_crash(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            FaultPlan.primary_crash(at=30.0, recover_at=20.0)

    def test_partition_requires_a_peer(self):
        from repro.errors import ConfigurationError
        from repro.faults import FaultEvent

        with pytest.raises(ConfigurationError):
            FaultEvent(1.0, FaultAction.PARTITION, "s0:n0")

    def test_replica_partition_plan_round_trips_through_a_simulation(self):
        config = crash_recover_config()
        config.fault_plan = FaultPlan.replica_partition(
            shard=0, replica_index=1, at=0.02, heal_at=0.10
        )
        result = Simulator(config).run()
        assert result.operations > 0
        # A partition alone makes nothing unavailable.
        assert result.summary()["request_error_rate"] == 0.0


class TestRoleTargetResolution:
    def test_second_crash_of_the_same_role_hits_the_promoted_primary(self):
        # Regression: role targets resolve at fire time.  Two "shard:0"
        # crashes must take down first the original primary, then the
        # replica promoted in between -- not no-op on the dead ex-primary.
        from repro.clock import VirtualClock
        from repro.cluster import ClusterClient, QuaestorCluster
        from repro.faults import FaultAction, FaultEvent, FaultInjector
        from repro.replication import ReplicationConfig
        from repro.simulation import EventQueue
        from repro.simulation.latency import LatencyModel

        clock = VirtualClock()
        cluster = QuaestorCluster(
            num_shards=1, clock=clock, matching_nodes=1,
            replication=ReplicationConfig(
                replication_factor=3, lag=LatencyModel(0.01)
            ),
        )
        ClusterClient(cluster).handle_insert("posts", {"_id": "x", "views": 0})
        events = EventQueue()
        plan = FaultPlan(
            events=[
                FaultEvent(1.0, FaultAction.CRASH, "shard:0"),
                FaultEvent(5.0, FaultAction.CRASH, "shard:0"),
            ]
        )
        injector = FaultInjector(cluster, events, clock, plan, detection_delay=0.5)
        injector.arm()
        events.run_until(clock, 10.0)

        crashed = [e["node"] for e in injector.timeline if e["action"] == "crash"]
        assert crashed == ["s0:n0", "s0:n1"]
        assert sum(1 for e in injector.timeline if e["action"] == "failover") == 2
        # The single failover source of truth is the cluster counter.
        assert cluster.counters.get("failovers") == 2
        assert "failovers" not in injector.summary()

    def test_heal_after_failover_heals_the_originally_cut_link(self):
        # Regression: PARTITION resolves its role target at fire time and
        # the matching HEAL must heal that same pair, even when a failover
        # moved the shard's primary in between -- otherwise the partition
        # entry lingers forever and re-applies on a later promotion.
        from repro.clock import VirtualClock
        from repro.cluster import ClusterClient, QuaestorCluster
        from repro.faults import FaultAction, FaultEvent, FaultInjector
        from repro.replication import ReplicationConfig
        from repro.simulation import EventQueue
        from repro.simulation.latency import LatencyModel

        clock = VirtualClock()
        cluster = QuaestorCluster(
            num_shards=1, clock=clock, matching_nodes=1,
            replication=ReplicationConfig(
                replication_factor=3, lag=LatencyModel(0.01)
            ),
        )
        ClusterClient(cluster).handle_insert("posts", {"_id": "x", "views": 0})
        events = EventQueue()
        plan = FaultPlan(
            events=[
                FaultEvent(1.0, FaultAction.PARTITION, "shard:0", peer="s0:n2"),
                FaultEvent(2.0, FaultAction.CRASH, "shard:0"),   # n0 -> failover to n1
                FaultEvent(5.0, FaultAction.HEAL, "shard:0", peer="s0:n2"),
            ]
        )
        injector = FaultInjector(cluster, events, clock, plan, detection_delay=0.5)
        injector.arm()
        events.run_until(clock, 10.0)

        group = cluster.groups[0]
        # The heal removed the (n0, n2) pair the partition actually cut:
        # no zombie partition remains to re-apply on future promotions.
        assert not group._partitions
        assert not group.node("s0:n2").link.partitioned
