"""Replica groups: log shipping, consistency gating, failover, recovery."""

from __future__ import annotations

import pytest

from repro.clock import VirtualClock
from repro.core import ConsistencyLevel, QuaestorConfig, QuaestorServer
from repro.db import Database
from repro.errors import ShardUnavailableError
from repro.invalidb import InvaliDBCluster
from repro.replication import ReplicaGroup, ReplicationConfig
from repro.rest.messages import StatusCode
from repro.simulation.latency import LatencyModel


def build_group(replication_factor: int = 2, lag_mean: float = 0.05, clock=None):
    clock = clock if clock is not None else VirtualClock()
    database = Database(clock=clock)
    posts = database.create_collection("posts")
    posts.create_index("category")
    for index in range(12):
        posts.insert({"_id": f"p{index}", "category": index % 3, "views": index})
    config = QuaestorConfig()
    server = QuaestorServer(database, config=config, invalidb=InvaliDBCluster(matching_nodes=1))

    def factory(new_database, ebf, ttl_estimator):
        return QuaestorServer(
            new_database,
            config=config,
            invalidb=InvaliDBCluster(matching_nodes=1),
            ebf=ebf,
            ttl_estimator=ttl_estimator,
        )

    replication = ReplicationConfig(
        replication_factor=replication_factor,
        lag=LatencyModel(mean=lag_mean, jitter=0.0),
    )
    group = ReplicaGroup(
        shard_id=0,
        database=database,
        server=server,
        server_factory=factory,
        clock=clock,
        config=replication,
    )
    return clock, database, server, group


class TestSeedingAndShipping:
    def test_replicas_start_with_a_faithful_snapshot(self):
        _clock, database, _server, group = build_group(replication_factor=3)
        for node in group.replica_nodes():
            assert node.database.collection("posts").ids() == database.collection("posts").ids()
            for document_id in database.collection("posts").ids():
                assert node.database.collection("posts").version(document_id) == (
                    database.collection("posts").version(document_id)
                )
            assert "category" in node.database.collection("posts").indexed_fields()

    def test_writes_become_visible_only_after_the_modelled_lag(self):
        clock, database, _server, group = build_group(replication_factor=2, lag_mean=0.05)
        clock.advance(1.0)
        database.update("posts", "p1", {"$set": {"views": 999}})
        replica = group.replica_nodes()[0]

        # Before the lag has elapsed, the replica still serves the old state.
        replica.deliver_until(clock.now())
        assert replica.database.get("posts", "p1")["views"] == 1

        clock.advance(0.06)
        replica.deliver_until(clock.now())
        assert replica.database.get("posts", "p1")["views"] == 999
        assert replica.database.collection("posts").version("p1") == (
            database.collection("posts").version("p1")
        )

    def test_version_sequences_stay_in_lockstep_across_delete_reinsert(self):
        clock, database, _server, group = build_group(replication_factor=2, lag_mean=0.01)
        clock.advance(1.0)
        database.update("posts", "p2", {"$inc": {"views": 1}})
        database.delete("posts", "p2")
        database.insert("posts", {"_id": "p2", "category": 0, "views": 0})
        clock.advance(0.1)
        replica = group.replica_nodes()[0]
        replica.deliver_until(clock.now())
        assert replica.database.collection("posts").version("p2") == (
            database.collection("posts").version("p2")
        )

    def test_rf1_group_never_samples_lag_and_routes_to_primary(self):
        clock, database, server, group = build_group(replication_factor=1)
        clock.advance(1.0)
        database.update("posts", "p0", {"$set": {"views": 5}})
        response = group.read("posts", "p0")
        assert response.body["document"]["views"] == 5
        assert group.last_served_node_id == group.primary_node_id
        assert group.counters.get("replica_reads") == 0
        assert group.server is server


class TestConsistencyGating:
    def test_strong_reads_always_hit_the_primary(self):
        clock, _database, _server, group = build_group(replication_factor=3)
        clock.advance(1.0)
        for _ in range(6):
            group.read("posts", "p1", consistency=ConsistencyLevel.STRONG)
        assert group.counters.get("replica_reads") == 0
        assert group.counters.get("primary_reads") == 6

    def test_delta_atomic_reads_round_robin_over_all_nodes(self):
        clock, _database, _server, group = build_group(replication_factor=3)
        clock.advance(1.0)
        served = set()
        for _ in range(6):
            group.read("posts", "p1", consistency=ConsistencyLevel.DELTA_ATOMIC)
            served.add(group.last_served_node_id)
        assert served == {"s0:n0", "s0:n1", "s0:n2"}

    def test_causal_reads_skip_replicas_behind_the_frontier(self):
        clock, database, _server, group = build_group(replication_factor=2, lag_mean=0.5)
        clock.advance(1.0)
        database.update("posts", "p3", {"$set": {"views": 100}})
        frontier = clock.now()
        clock.advance(0.01)  # lag (0.5s) has not elapsed: replica is behind
        for _ in range(4):
            response = group.read(
                "posts", "p3", consistency=ConsistencyLevel.CAUSAL, min_timestamp=frontier
            )
            assert response.body["document"]["views"] == 100
        assert group.counters.get("replica_reads") == 0
        assert group.counters.get("causal_replica_skips") > 0

        # Once the replica catches up it becomes eligible again.
        clock.advance(1.0)
        served = set()
        for _ in range(4):
            group.read(
                "posts", "p3", consistency=ConsistencyLevel.CAUSAL, min_timestamp=frontier
            )
            served.add(group.last_served_node_id)
        assert len(served) == 2

    def test_replica_miss_falls_back_to_the_primary(self):
        # Regression: a document the primary has acknowledged but a lagging
        # replica has not applied yet must never read back as a 404 while the
        # primary is alive -- that would break read-your-writes for inserts.
        clock, database, _server, group = build_group(replication_factor=2, lag_mean=10.0)
        clock.advance(1.0)
        database.create_collection("posts").insert(
            {"_id": "fresh", "category": 9, "views": 1}
        )
        for _ in range(4):  # round-robin must hit the lagging replica too
            response = group.read("posts", "fresh", consistency=ConsistencyLevel.DELTA_ATOMIC)
            assert response.status is StatusCode.OK
            assert response.body["document"]["_id"] == "fresh"
        assert group.counters.get("replica_read_misses") > 0

    def test_stale_replica_read_is_served_not_failed(self):
        clock, database, _server, group = build_group(replication_factor=2, lag_mean=10.0)
        clock.advance(1.0)
        database.update("posts", "p4", {"$set": {"views": 777}})
        clock.advance(0.1)
        # Force the replica by crashing the primary: fail-stale serving.
        group.crash(group.primary_node_id)
        response = group.read("posts", "p4", consistency=ConsistencyLevel.DELTA_ATOMIC)
        assert response.status is StatusCode.OK
        assert response.body["document"]["views"] == 4  # pre-update state


class TestFailover:
    def test_strong_read_and_unreplicated_group_raise_when_primary_down(self):
        clock, _database, _server, group = build_group(replication_factor=2)
        clock.advance(1.0)
        group.crash(group.primary_node_id)
        with pytest.raises(ShardUnavailableError):
            group.read("posts", "p0", consistency=ConsistencyLevel.STRONG)

        _clock2, _db2, _server2, rf1 = build_group(replication_factor=1)
        rf1.crash(rf1.primary_node_id)
        with pytest.raises(ShardUnavailableError):
            rf1.read("posts", "p0")

    def test_promote_picks_the_freshest_replica(self):
        clock, database, _server, group = build_group(replication_factor=3, lag_mean=0.05)
        clock.advance(1.0)
        # Partition n2 so only n1 receives the write stream.
        group.partition(group.primary_node_id, "s0:n2")
        database.update("posts", "p5", {"$set": {"views": 500}})
        clock.advance(0.2)
        group.crash(group.primary_node_id)
        info = group.promote()
        assert info["node_id"] == "s0:n1"
        assert group.primary_alive
        assert group.server.database.get("posts", "p5")["views"] == 500

    def test_lost_tail_is_flagged_stale_in_the_surviving_ebf(self):
        clock, database, _server, group = build_group(replication_factor=2, lag_mean=5.0)
        clock.advance(1.0)
        # Serve a read so the EBF tracks the key as cacheable.
        group.read("posts", "p6", consistency=ConsistencyLevel.STRONG)
        database.update("posts", "p6", {"$set": {"views": 600}})
        clock.advance(0.1)  # far below the 5s lag: the update never arrives
        group.crash(group.primary_node_id)
        info = group.promote()
        assert info["lost_records"] >= 1
        # The rolled-back key must read stale so caches revalidate.
        assert group.ebf.is_stale("record:posts/p6")
        # And the promoted primary indeed serves the pre-update state.
        assert group.server.database.get("posts", "p6")["views"] == 6

    def test_lost_versions_are_never_reissued_after_failover(self):
        # Regression: the deposed primary assigned a version the promoted
        # replica never applied; the next write on the new primary must skip
        # past it -- re-issuing the number to different content would make
        # version-keyed ETags alias two bodies (fail-incorrect).
        clock, database, _server, group = build_group(replication_factor=2, lag_mean=5.0)
        clock.advance(1.0)
        database.update("posts", "p6", {"$set": {"views": 600}})  # v2, in flight
        lost_version = database.collection("posts").version("p6")
        clock.advance(0.1)
        group.crash(group.primary_node_id)
        group.promote()
        promoted = group.server.database.collection("posts")
        assert promoted.version("p6") < lost_version
        group.server.handle_update("posts", "p6", {"$set": {"views": 601}})
        assert promoted.version("p6") > lost_version

    def test_loss_window_covers_writes_the_winner_never_received(self):
        # Regression: the loss window must come from the deposed primary's
        # change stream, not the winner's link -- a write acknowledged while
        # the winner was crashed (and queued only on a partitioned peer's
        # link) would otherwise vanish with no fail-stale flag and its
        # version number would be re-issued to different content.
        clock, database, _server, group = build_group(replication_factor=3, lag_mean=0.01)
        clock.advance(1.0)
        group.read("posts", "p1", consistency=ConsistencyLevel.STRONG)  # EBF tracks p1
        group.partition(group.primary_node_id, "s0:n2")
        group.crash("s0:n1")
        database.update("posts", "p1", {"$set": {"views": 100}})  # acked: v2
        lost_version = database.collection("posts").version("p1")
        clock.advance(0.1)
        group.crash(group.primary_node_id)
        group.recover("s0:n1")          # rejoins primary-less, empty link
        info = group.promote()
        assert info["node_id"] == "s0:n1"
        assert info["lost_records"] >= 1
        assert group.ebf.is_stale("record:posts/p1")
        promoted = group.server.database.collection("posts")
        group.server.handle_update("posts", "p1", {"$set": {"views": 7}})
        assert promoted.version("p1") > lost_version

    def test_rejoined_candidate_with_empty_link_is_not_causally_trusted(self):
        # Regression: an empty link proves nothing after a crash (no ship
        # fan-out while dead); a causal read below the session frontier must
        # not be served from such a node.
        clock, database, _server, group = build_group(replication_factor=3, lag_mean=0.01)
        clock.advance(1.0)
        group.crash("s0:n1")
        database.update("posts", "p2", {"$set": {"views": 42}})
        frontier = clock.now()
        clock.advance(0.1)
        group.crash(group.primary_node_id)
        group.recover("s0:n1")          # candidate: link empty but unsound
        for _ in range(4):
            response = group.read(
                "posts", "p2", consistency=ConsistencyLevel.CAUSAL, min_timestamp=frontier
            )
            # Only the caught-up n2 may serve; the rejoined n1 may not.
            assert response.body["document"]["views"] == 42
            assert group.last_served_node_id == "s0:n2"

    def test_restored_floor_survives_delete_reinsert_and_resync(self):
        # Regression trio: a failover-restored floor above the live version
        # must survive (a) a delete (no clobbering with the lower final
        # version), (b) version_floors() reporting (no masking by the live
        # version), and (c) a snapshot resync -- otherwise a later write or
        # promotion recycles version numbers the deposed primary issued.
        from repro.clock import VirtualClock as VC
        from repro.db import Database as DB

        database = DB(clock=VC())
        posts = database.create_collection("posts")
        posts.insert({"_id": "x", "views": 0})            # live at v1
        posts.restore_version_floors({"x": 7})            # deposed primary issued up to v7
        assert posts.version_floors()["x"] == 7           # (b) floor not masked

        posts.delete("x")                                 # (a) must keep floor 7, not 1
        posts.insert({"_id": "x", "views": 1})
        assert posts.version("x") == 8

        # (c) floors survive a replica snapshot resync.
        node_clock = VC()
        from repro.replication import ReplicaNode

        posts.restore_version_floors({"x": 20})
        node = ReplicaNode("n", database.clock)
        node.seed_from(database)
        replica_posts = node.database.collection("posts")
        assert replica_posts.version("x") == 8            # live version preserved
        replica_posts.update("x", {"$inc": {"views": 1}})
        assert replica_posts.version("x") == 21           # floor carried over

    def test_writes_resume_on_the_promoted_primary_and_ship_to_survivors(self):
        clock, database, _server, group = build_group(replication_factor=3, lag_mean=0.01)
        clock.advance(1.0)
        group.crash(group.primary_node_id)
        group.promote()
        new_primary = group.server
        new_primary.handle_update("posts", "p7", {"$set": {"views": 700}})
        clock.advance(0.1)
        survivor = [n for n in group.replica_nodes() if n.alive][0]
        survivor.deliver_until(clock.now())
        assert survivor.database.get("posts", "p7")["views"] == 700

    def test_recovered_node_rejoins_as_replica_with_current_state(self):
        clock, database, _server, group = build_group(replication_factor=2, lag_mean=0.01)
        clock.advance(1.0)
        old_primary = group.primary_node_id
        group.crash(old_primary)
        group.promote()
        group.server.handle_update("posts", "p8", {"$set": {"views": 800}})
        clock.advance(0.5)
        assert group.recover(old_primary) == "replica"
        rejoined = group.node(old_primary)
        assert rejoined.database.get("posts", "p8")["views"] == 800

    def test_total_outage_recovers_from_disk(self):
        clock, _database, _server, group = build_group(replication_factor=2)
        clock.advance(1.0)
        group.crash("s0:n1")
        group.crash(group.primary_node_id)
        assert group.promote() is None  # nobody left to promote
        with pytest.raises(ShardUnavailableError):
            group.read("posts", "p0")
        assert group.recover("s0:n0") == "primary"
        assert group.read("posts", "p0").status is StatusCode.OK

    def test_total_outage_restore_keeps_promoted_era_writes(self):
        # Regression: after crash -> promote -> write -> second crash, a
        # stale node ending the total outage must restore from the last
        # primary's durable state, not its own -- rolling back acknowledged
        # writes would also re-issue their version numbers to new content
        # (ETag aliasing: fail-incorrect).
        clock, _database, _server, group = build_group(replication_factor=3, lag_mean=0.01)
        clock.advance(1.0)
        group.crash(group.primary_node_id)          # n0 down
        group.promote()                             # n1 serves
        group.server.handle_update("posts", "p1", {"$set": {"views": 111}})
        promoted_version = group.database.collection("posts").version("p1")
        # n2 never applies the write (crash it before the lag elapses).
        group.crash("s0:n2")
        group.crash(group.primary_node_id)          # n1 down: total outage
        assert group.recover("s0:n2") == "primary"
        assert group.server.database.get("posts", "p1")["views"] == 111
        assert group.database.collection("posts").version("p1") == promoted_version

    def test_degenerate_partition_pair_is_a_noop(self):
        clock, _database, _server, group = build_group(replication_factor=2)
        group.partition(group.primary_node_id, group.primary_node_id)
        assert group.counters.get("degenerate_partitions_ignored") == 1
        # The group keeps serving; no partition is recorded.
        assert group.read("posts", "p0").status is StatusCode.OK
        group.heal(group.primary_node_id, group.primary_node_id)  # also a no-op


class TestPartitions:
    def test_partition_does_not_retroactively_block_arrived_records(self):
        # Delivery is lazy, so a partition (or crash) must first materialise
        # every record whose delivery time had already passed -- only
        # in-flight and future traffic may be cut.
        clock, database, _server, group = build_group(replication_factor=2, lag_mean=0.01)
        clock.advance(1.0)
        database.update("posts", "p0", {"$set": {"views": 50}})
        clock.advance(1.0)  # the update has long arrived, just not applied
        group.partition(group.primary_node_id, "s0:n1")
        replica = group.node("s0:n1")
        assert replica.database.get("posts", "p0")["views"] == 50

        group.crash(group.primary_node_id)
        response = group.read("posts", "p0")
        assert response.body["document"]["views"] == 50

    def test_partitioned_replica_catches_up_after_heal(self):
        clock, database, _server, group = build_group(replication_factor=2, lag_mean=0.01)
        clock.advance(1.0)
        replica_id = "s0:n1"
        group.partition(group.primary_node_id, replica_id)
        database.update("posts", "p9", {"$set": {"views": 900}})
        clock.advance(5.0)
        replica = group.node(replica_id)
        replica.deliver_until(clock.now())
        assert replica.database.get("posts", "p9")["views"] == 9  # still partitioned

        group.heal(group.primary_node_id, replica_id)
        clock.advance(1.0)
        replica.deliver_until(clock.now())
        assert replica.database.get("posts", "p9")["views"] == 900
