"""Cluster-level replication: degraded scatter, failover rebuild, metrics."""

from __future__ import annotations

import pytest

from repro.clock import VirtualClock
from repro.cluster import ClusterClient, QuaestorCluster
from repro.core import ConsistencyLevel
from repro.db.query import Query
from repro.replication import ReplicationConfig
from repro.rest.messages import StatusCode
from repro.simulation.latency import LatencyModel


def build_cluster(num_shards=2, replication_factor=2, lag_mean=0.01, clock=None):
    clock = clock if clock is not None else VirtualClock()
    replication = ReplicationConfig(
        replication_factor=replication_factor,
        lag=LatencyModel(mean=lag_mean, jitter=0.0),
    )
    cluster = QuaestorCluster(
        num_shards=num_shards, clock=clock, matching_nodes=2, replication=replication
    )
    facade = ClusterClient(cluster)
    for index in range(40):
        facade.handle_insert(
            "posts", {"_id": f"p{index:02d}", "category": index % 4, "views": index}
        )
    clock.advance(1.0)
    return clock, cluster, facade


class TestScatterDegradation:
    def test_one_dead_shard_yields_structured_errors_not_exceptions(self):
        clock, cluster, facade = build_cluster()
        query = Query("posts", {"category": 1})
        complete = facade.handle_query(query)

        cluster.crash_node(cluster.groups[0].primary_node_id)
        degraded = facade.handle_query(query)

        assert degraded.status is StatusCode.OK
        assert degraded.body["shard_errors"] == {0: "primary-unavailable"}
        assert not degraded.is_cacheable
        # The surviving shard still contributes its sub-result.
        surviving = set(degraded.body["ids"])
        assert surviving and surviving <= set(complete.body["ids"])

    def test_degraded_scatter_is_counted_in_cluster_metrics(self):
        clock, cluster, facade = build_cluster()
        query = Query("posts", {"category": 2})
        facade.handle_query(query)
        cluster.crash_node(cluster.groups[1].primary_node_id)
        facade.handle_query(query)
        facade.handle_query(query)

        stats = cluster.statistics()
        assert stats["cluster_scatter_queries_degraded"] == 2
        assert stats["cluster_scatter_shard_errors"] == 2
        assert stats["shard_error_rate"] == pytest.approx(2 / 3)

    def test_all_shards_down_returns_503(self):
        clock, cluster, facade = build_cluster(num_shards=2, replication_factor=1)
        for group in cluster.groups:
            cluster.crash_node(group.primary_node_id)
        response = facade.handle_query(Query("posts", {"category": 0}))
        assert response.status is StatusCode.SERVICE_UNAVAILABLE
        assert response.body["error"] == "unavailable"

    def test_degraded_merge_does_not_whitelist_a_stale_cached_result(self):
        # Regression: a partial merge served during an outage must not mark
        # the query key fresh client-side -- the EBF flagged it stale, and a
        # cached full result would otherwise be served as fresh without the
        # revalidation the flag demanded (fail-incorrect).
        from repro.client import QuaestorClient

        clock, cluster, facade = build_cluster()
        client = QuaestorClient(facade, clock=clock, refresh_interval=0.5)
        client.connect()
        query = Query("posts", {"category": 1})
        full = client.query(query)
        assert len(full.value) == 10

        # A member write flags the query key; refresh the client's EBF copy
        # (within the flag's lifetime, past the refresh interval).
        member = next(doc["_id"] for doc in full.value)
        client.update("posts", member, {"$set": {"title": "new"}})
        clock.advance(0.6)
        client.refresh_bloom_filter()
        assert client._is_potentially_stale(query.cache_key)

        # Outage: the revalidation yields a degraded partial merge.
        cluster.crash_node(cluster.groups[0].primary_node_id)
        degraded = client.query(query)
        assert query.cache_key not in client.whitelist, (
            "a partial merge must not whitelist the key as fresh"
        )
        # The next query still revalidates rather than trusting stale cache.
        assert client._is_potentially_stale(query.cache_key)

    def test_partial_id_list_assembly_is_marked_degraded(self):
        # Regression: a cached id-list shell whose member fetches hit a dead
        # shard yields a partial result; it must be counted degraded and
        # must not whitelist the query key as fresh.
        from repro.client import QuaestorClient
        from repro.core import QuaestorConfig
        from repro.db.query import record_key

        clock = VirtualClock()
        config = QuaestorConfig(object_list_max_size=0, assumed_record_hit_rate=0.99)
        cluster = QuaestorCluster(num_shards=2, clock=clock, matching_nodes=1, config=config)
        client = QuaestorClient(
            ClusterClient(cluster), clock=clock, refresh_interval=10.0
        )
        for index in range(12):
            client.insert("posts", {"_id": f"p{index}", "views": index})
        client.connect()
        query = Query("posts", {"views": {"$gt": 3}})
        n_full = len(client.query(query).value)
        assert n_full == 8

        cluster.crash_node(cluster.groups[0].primary_node_id)
        for index in range(12):
            client.client_cache.remove(record_key("posts", f"p{index}"))
        client.whitelist.reset()
        partial = client.query(query)
        assert partial.level == "client"  # the shell itself was a cache hit
        assert "error" in partial.extra_levels
        assert len(partial.value) < n_full
        assert client.counters.get("degraded_queries") >= 1
        assert query.cache_key not in client.whitelist

    def test_degraded_merge_is_not_recorded_as_authoritative(self):
        clock, cluster, facade = build_cluster()
        query = Query("posts", {"category": 3})
        facade.handle_query(query)
        history_before = cluster.auditor.current_version(query.cache_key)
        cluster.crash_node(cluster.groups[0].primary_node_id)
        facade.handle_query(query)
        assert cluster.auditor.current_version(query.cache_key) == history_before


class TestClusterFailover:
    def test_failover_reroutes_reads_and_writes_to_the_promoted_server(self):
        clock, cluster, facade = build_cluster()
        victim = cluster.groups[0]
        old_server = victim.server
        cluster.crash_node(victim.primary_node_id)
        clock.advance(0.5)
        info = cluster.failover(0)
        assert info is not None
        assert cluster.shards[0].server is victim.server
        assert cluster.shards[0].server is not old_server

        # Writes owned by shard 0 succeed again.
        wrote = False
        for index in range(40):
            document_id = f"p{index:02d}"
            if cluster.router.shard_for_record("posts", document_id) != 0:
                continue
            response = facade.handle_update("posts", document_id, {"$inc": {"views": 1}})
            assert response.status is StatusCode.OK
            wrote = True
            break
        assert wrote

    def test_registered_queries_are_rebuilt_on_the_promoted_primary(self):
        clock, cluster, facade = build_cluster()
        query = Query("posts", {"category": 1})
        facade.handle_query(query)  # committed fleet-wide -> registered
        victim = cluster.groups[0]
        cluster.crash_node(victim.primary_node_id)
        clock.advance(0.5)
        cluster.failover(0)

        # The promoted server matches the query again: a write that changes
        # the result must flag the merged key in the union filter.
        assert victim.server.invalidb.is_registered(query.cache_key)
        member = None
        for index in range(40):
            document_id = f"p{index:02d}"
            if index % 4 == 1 and cluster.router.shard_for_record("posts", document_id) == 0:
                member = document_id
                break
        assert member is not None
        facade.handle_update("posts", member, {"$set": {"category": 0}})
        assert facade.get_bloom_filter().contains(query.cache_key)

    def test_failover_flags_registered_queries_stale(self):
        clock, cluster, facade = build_cluster()
        query = Query("posts", {"category": 2})
        facade.handle_query(query)
        victim = cluster.groups[0]
        cluster.crash_node(victim.primary_node_id)
        clock.advance(0.5)
        cluster.failover(0)
        # Fail-stale: cached merged results must revalidate after a failover.
        assert facade.get_bloom_filter().contains(query.cache_key)

    def test_replica_serves_delta_atomic_reads_through_the_outage(self):
        clock, cluster, facade = build_cluster()
        victim = cluster.groups[0]
        cluster.crash_node(victim.primary_node_id)
        served = 0
        for index in range(40):
            document_id = f"p{index:02d}"
            if cluster.router.shard_for_record("posts", document_id) != 0:
                continue
            response = facade.handle_read(
                "posts", document_id, consistency=ConsistencyLevel.DELTA_ATOMIC
            )
            assert response.status is StatusCode.OK
            served += 1
        assert served > 0

    def test_strong_reads_get_structured_503_during_the_outage(self):
        clock, cluster, facade = build_cluster()
        victim = cluster.groups[0]
        cluster.crash_node(victim.primary_node_id)
        got_503 = False
        for index in range(40):
            document_id = f"p{index:02d}"
            if cluster.router.shard_for_record("posts", document_id) != 0:
                continue
            response = facade.handle_read(
                "posts", document_id, consistency=ConsistencyLevel.STRONG
            )
            assert response.status is StatusCode.SERVICE_UNAVAILABLE
            assert response.body == {"error": "unavailable", "shard": 0}
            got_503 = True
            break
        assert got_503

    def test_promoted_server_keeps_purging_the_cdn(self):
        # Regression: a server installed by failover must be wired to the
        # same purge targets as the one it replaces, or CDN purges silently
        # stop for that shard after the first crash.
        clock, cluster, facade = build_cluster()
        purged = []
        cluster.register_purge_target(purged.append)
        member = None
        for index in range(40):
            document_id = f"p{index:02d}"
            if cluster.router.shard_for_record("posts", document_id) == 0:
                member = document_id
                break
        facade.handle_update("posts", member, {"$inc": {"views": 1}})
        assert purged, "sanity: purges fire before the crash"

        cluster.crash_node(cluster.groups[0].primary_node_id)
        clock.advance(0.5)
        cluster.failover(0)
        purged.clear()
        facade.handle_update("posts", member, {"$inc": {"views": 1}})
        assert f"record:posts/{member}" in purged

    def test_statistics_cover_the_pre_failover_tenure(self):
        clock, cluster, facade = build_cluster()
        for index in range(40):
            facade.handle_read("posts", f"p{index:02d}")
        reads_before = cluster.statistics()["reads"]
        cluster.crash_node(cluster.groups[0].primary_node_id)
        clock.advance(0.5)
        cluster.failover(0)
        # The retired server's counters are retained, not dropped.
        assert cluster.statistics()["reads"] >= reads_before

    def test_recovering_candidate_ends_an_unresolved_outage(self):
        # Primary-less group with a rejoining replica: the cluster promotes
        # the freshest candidate instead of leaving the shard down forever.
        clock, cluster, facade = build_cluster(num_shards=1, replication_factor=2)
        group = cluster.groups[0]
        replica_id = group.replica_nodes()[0].node_id
        cluster.crash_node(replica_id)
        cluster.crash_node(group.primary_node_id)
        assert cluster.failover(0) is None  # nothing to promote
        clock.advance(1.0)
        shard_id, role = cluster.recover_node(replica_id)
        assert role == "primary"
        assert group.primary_alive
        response = facade.handle_read("posts", "p00")
        assert response.status is StatusCode.OK

    def test_rejoined_candidate_promotion_covers_collections_created_while_down(self):
        # Regression: a node that was down when a collection was materialised
        # may later resume service as primary; scatter queries must degrade
        # or serve, never raise CollectionNotFoundError through the cluster.
        clock, cluster, facade = build_cluster(num_shards=2, replication_factor=3)
        group = cluster.groups[0]
        cluster.crash_node("s0:n1")
        cluster.crash_node(group.primary_node_id)
        # Materialised while s0:n1 and s0:n0 are down (insert routes wherever).
        facade.handle_insert("newcoll", {"_id": "x", "views": 1})
        clock.advance(1.0)  # detection window long elapsed
        cluster.recover_node("s0:n1")
        assert group.primary_alive
        response = facade.handle_query(Query("newcoll", {}))
        assert response.status is StatusCode.OK

    def test_current_epoch_survivor_outranks_a_stale_rejoined_candidate(self):
        # Freshness is (epoch, sequence): a candidate rejoining with
        # old-epoch state must not outrank a survivor that followed the
        # promoted primary's stream, whatever its raw sequence number says.
        clock, cluster, facade = build_cluster(num_shards=1, replication_factor=3)
        group = cluster.groups[0]
        # n2 freezes holding epoch-0 state with a *high* sequence (all the
        # dataset inserts); every later epoch restarts sequences near zero.
        cluster.crash_node("s0:n2")
        cluster.crash_node("s0:n0")                      # primary down
        clock.advance(0.5)
        cluster.failover(0)                              # n1 promoted: epoch 1
        assert group.primary_node_id == "s0:n1"
        cluster.recover_node("s0:n0")                    # healthy rejoin: epoch 1
        facade.handle_update("posts", "p00", {"$inc": {"views": 1}})
        clock.advance(1.0)
        cluster.crash_node("s0:n1")                      # primary-less; n0 survives
        cluster.recover_node("s0:n2")                    # epoch-0 candidate rejoins
        clock.advance(1.0)
        info = cluster.failover(0)
        # On raw sequence the stale n2 would win (epoch-0 numbers are far
        # higher); the epoch comparison promotes the current-epoch n0.
        assert info["node_id"] == "s0:n0"

    def test_ebf_union_keeps_stale_flags_through_a_crash(self):
        clock, cluster, facade = build_cluster()
        # Read then invalidate a record on shard 0 so its key is stale.
        target = None
        for index in range(40):
            document_id = f"p{index:02d}"
            if cluster.router.shard_for_record("posts", document_id) == 0:
                target = document_id
                break
        facade.handle_read("posts", target)
        facade.handle_update("posts", target, {"$inc": {"views": 1}})
        key = f"record:posts/{target}"
        assert facade.get_bloom_filter().contains(key)

        cluster.crash_node(cluster.groups[0].primary_node_id)
        # Fail-stale: the flag must survive the crash (shared coherence tier).
        assert facade.get_bloom_filter().contains(key)
        clock.advance(0.5)
        cluster.failover(0)
        assert facade.get_bloom_filter().contains(key)
