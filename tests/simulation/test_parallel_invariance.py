"""Worker-count and epoch-length invariance of the parallel simulator.

The partition decomposition is a pure function of ``(config,
num_partitions)``; worker count only schedules partitions onto processes and
epoch length only sets barrier frequency.  Neither may leave any trace in
the merged results -- these tests pin that down with exact equality.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.simulation import CachingMode, ParallelSimulator, partition_simulation
from repro.simulation.parallel import parity_config


@pytest.fixture(scope="module")
def config():
    return parity_config(CachingMode.QUAESTOR, replication_factor=3, num_partitions=4)


@pytest.fixture(scope="module")
def result_workers2(config):
    return ParallelSimulator(config, num_partitions=4, num_workers=2).run()


@pytest.fixture(scope="module")
def result_workers4(config):
    return ParallelSimulator(config, num_partitions=4, num_workers=4).run()


def canonical(summary: dict) -> str:
    return json.dumps(summary, sort_keys=False, separators=(",", ":"))


class TestWorkerCountInvariance:
    def test_workers_2_and_4_merge_identically(self, result_workers2, result_workers4):
        assert canonical(result_workers2.summary()) == canonical(result_workers4.summary())

    def test_barrier_traces_are_worker_count_invariant(
        self, result_workers2, result_workers4
    ):
        """Per-epoch progress reports are about partitions, not processes."""
        assert result_workers2.barrier_trace == result_workers4.barrier_trace
        assert result_workers2.epochs_run == result_workers4.epochs_run

    def test_inline_single_worker_matches_spawned_workers(self, config, result_workers2):
        inline = ParallelSimulator(config, num_partitions=4, num_workers=1).run()
        assert canonical(inline.summary()) == canonical(result_workers2.summary())
        assert inline.barrier_trace == result_workers2.barrier_trace

    def test_run_to_run_determinism(self, config, result_workers2):
        again = ParallelSimulator(config, num_partitions=4, num_workers=2).run()
        assert canonical(again.summary()) == canonical(result_workers2.summary())
        assert again.barrier_trace == result_workers2.barrier_trace

    def test_per_partition_outcomes_are_worker_count_invariant(
        self, result_workers2, result_workers4
    ):
        for left, right in zip(result_workers2.outcomes, result_workers4.outcomes):
            assert left.partition_id == right.partition_id
            assert canonical(left.summary) == canonical(right.summary)
            assert left.events_processed == right.events_processed


class TestEpochLengthInvariance:
    def test_epoch_length_cannot_change_results(self, config, result_workers2):
        """Finer barriers change the trace, never a single result value."""
        fine = ParallelSimulator(
            config, num_partitions=4, num_workers=2, epoch_length=0.01
        ).run()
        assert canonical(fine.summary()) == canonical(result_workers2.summary())
        assert fine.epochs_run >= result_workers2.epochs_run


class TestEngineConfiguration:
    def test_worker_count_clamps_to_partitions(self, config):
        engine = ParallelSimulator(config, num_partitions=4, num_workers=16)
        assert engine.num_workers == 4
        assert engine.num_partitions == 4

    def test_partitions_must_divide_shards(self, config):
        with pytest.raises(ConfigurationError):
            partition_simulation(config, num_partitions=3)

    def test_every_partition_needs_a_client(self, config):
        # 8 shards but only 4 clients: 8 partitions would leave some without any.
        from dataclasses import replace

        with pytest.raises(ConfigurationError):
            partition_simulation(replace(config, num_shards=8), num_partitions=8)

    def test_invalid_engine_parameters(self, config):
        with pytest.raises(ConfigurationError):
            ParallelSimulator(config, num_partitions=4, num_workers=0)
        with pytest.raises(ConfigurationError):
            ParallelSimulator(config, num_partitions=4, num_workers=2, epoch_length=0.0)
