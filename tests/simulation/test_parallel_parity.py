"""Oracle parity for the process-parallel simulator (the PR 7 tentpole).

The single-process :class:`Simulator` is the golden oracle: for every
caching mode and replication factor, running the partitioned model through
real spawned worker processes must reproduce the serial merge *byte for
byte* -- summary dicts compare equal under Python ``==``, no tolerance.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.faults import FaultAction, FaultEvent, FaultPlan
from repro.simulation import (
    CachingMode,
    ParallelSimulator,
    Simulator,
    serial_oracle,
)
from repro.simulation.parallel import parity_config, run_parity_harness

MODES = (CachingMode.QUAESTOR, CachingMode.EBF_ONLY, CachingMode.CDN_ONLY)


def canonical(summary: dict) -> str:
    """Byte-exact serialised form (also pins key order)."""
    return json.dumps(summary, sort_keys=False, separators=(",", ":"))


class TestOracleParity:
    @pytest.mark.parametrize("mode", MODES, ids=lambda mode: mode.value)
    @pytest.mark.parametrize("replication_factor", (1, 3), ids=("rf1", "rf3"))
    def test_spawned_workers_match_serial_oracle(self, mode, replication_factor):
        config = parity_config(
            mode, replication_factor=replication_factor, num_partitions=2
        )
        oracle = serial_oracle(config, num_partitions=2)
        engine = ParallelSimulator(config, num_partitions=2, num_workers=2)
        parallel = engine.run()
        assert canonical(parallel.summary()) == canonical(oracle.summary())
        assert parallel.operations == oracle.operations
        assert parallel.total_operations == oracle.total_operations
        assert parallel.events_processed == oracle.events_processed

    def test_partition_one_is_the_classic_simulator(self):
        """P=1 is the identity: the degenerate parallel run == Simulator.run()."""
        config = parity_config(CachingMode.QUAESTOR, num_partitions=1)
        classic = Simulator(config).run().summary()
        merged = ParallelSimulator(config, num_partitions=1, num_workers=1).run().summary()
        assert canonical(merged) == canonical(classic)

    def test_parity_with_fault_plan_split_across_partitions(self):
        """Fault events route to their owning partition and stay in parity."""
        plan = FaultPlan(
            events=[
                FaultEvent(0.02, FaultAction.CRASH, "shard:0"),
                FaultEvent(0.03, FaultAction.CRASH, "s1:n1"),
                FaultEvent(0.12, FaultAction.RECOVER, "shard:0"),
                FaultEvent(0.13, FaultAction.RECOVER, "s1:n1"),
            ],
            name="parity-faults",
        )
        config = replace(
            parity_config(CachingMode.QUAESTOR, replication_factor=3), fault_plan=plan
        )
        oracle = serial_oracle(config, num_partitions=2)
        parallel = ParallelSimulator(config, num_partitions=2, num_workers=2).run()
        assert canonical(parallel.summary()) == canonical(oracle.summary())
        # Both partitions actually injected faults (late recoveries may land
        # after the operation budget is exhausted, so >= both crashes).
        assert oracle.summary()["faults_injected"] >= 2.0

    def test_parity_with_gray_failure_plan_and_resilience(self):
        """Gray slow/flaky events + the resilience layer stay in byte parity.

        Partitioned-serial and partitioned-parallel runs execute identical
        sub-configs, so the per-partition gray RNG substreams (seeded by
        rewritten target strings) and retry jitter draws line up exactly.
        """
        from repro.resilience import ResilienceConfig

        plan = FaultPlan(
            events=[
                FaultEvent(0.02, FaultAction.SLOW_SHARD, "shard:0", magnitude=4.0),
                FaultEvent(0.03, FaultAction.FLAKY_SHARD, "shard:1", magnitude=0.3),
                FaultEvent(0.04, FaultAction.SLOW_SHARD, "s1:n1", magnitude=6.0),
                FaultEvent(0.25, FaultAction.RESTORE, "shard:0"),
                FaultEvent(0.26, FaultAction.RESTORE, "shard:1"),
                FaultEvent(0.27, FaultAction.RESTORE, "s1:n1"),
            ],
            name="gray-parity",
        )
        config = replace(
            parity_config(CachingMode.QUAESTOR, replication_factor=3),
            fault_plan=plan,
            resilience=ResilienceConfig(),
        )
        oracle = serial_oracle(config, num_partitions=2)
        parallel = ParallelSimulator(config, num_partitions=2, num_workers=2).run()
        assert canonical(parallel.summary()) == canonical(oracle.summary())
        # The gray window actually exercised the resilience layer.
        assert oracle.summary()["resilience_retries"] > 0

    def test_run_parity_harness_reports_all_match(self):
        report = run_parity_harness(
            modes=(CachingMode.QUAESTOR,),
            replication_factors=(1,),
            workers=(2,),
            num_partitions=2,
        )
        assert report["all_match"] is True
        (case,) = report["cases"]
        assert case["workers"] == {2: True}
