"""LatencyModel distributions: the gauss default and the lognormal opt-in."""

from __future__ import annotations

import statistics

import pytest

from repro.simulation.latency import LatencyModel


class TestGaussDefault:
    def test_default_distribution_is_gauss(self):
        assert LatencyModel(0.1, jitter=0.01).distribution == "gauss"

    def test_gauss_stream_is_unchanged_by_the_new_field(self):
        # The distribution knob sits before the private RNG field, so seeded
        # gauss draws are exactly what they were before the field existed.
        model = LatencyModel(0.1, jitter=0.01)
        model.reseed(17)
        import random

        reference = random.Random(17)
        assert model.sample() == pytest.approx(
            max(0.0, reference.gauss(0.1, 0.01)), abs=0.0
        )

    def test_positional_construction_still_works(self):
        model = LatencyModel(0.1, 0.01, 0.05)
        assert model.minimum == pytest.approx(0.05)
        assert model.distribution == "gauss"

    def test_zero_jitter_returns_the_mean_for_both_distributions(self):
        assert LatencyModel(0.1).sample() == pytest.approx(0.1)
        assert LatencyModel(0.1, distribution="lognormal").sample() == pytest.approx(0.1)


class TestLognormal:
    def test_moment_matching_preserves_mean_and_spread(self):
        model = LatencyModel(0.145, jitter=0.03, distribution="lognormal")
        model.reseed(23)
        samples = [model.sample() for _ in range(60_000)]
        assert statistics.fmean(samples) == pytest.approx(0.145, rel=0.02)
        assert statistics.stdev(samples) == pytest.approx(0.03, rel=0.05)

    def test_right_skew(self):
        model = LatencyModel(0.145, jitter=0.05, distribution="lognormal")
        model.reseed(29)
        samples = [model.sample() for _ in range(60_000)]
        mean = statistics.fmean(samples)
        median = statistics.median(samples)
        assert mean > median  # heavy upper tail
        assert min(samples) > 0.0  # lognormal never goes negative

    def test_seeded_determinism(self):
        first = LatencyModel(0.1, jitter=0.02, distribution="lognormal")
        second = LatencyModel(0.1, jitter=0.02, distribution="lognormal")
        first.reseed(7)
        second.reseed(7)
        assert [first.sample() for _ in range(32)] == [second.sample() for _ in range(32)]

    def test_minimum_clamp_applies(self):
        model = LatencyModel(0.1, jitter=0.08, distribution="lognormal", minimum=0.09)
        model.reseed(3)
        assert all(model.sample() >= 0.09 for _ in range(1000))


class TestValidation:
    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(0.1, distribution="pareto")

    def test_lognormal_jitter_requires_positive_mean(self):
        with pytest.raises(ValueError):
            LatencyModel(0.0, jitter=0.01, distribution="lognormal")

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(-0.1)
        with pytest.raises(ValueError):
            LatencyModel(0.1, jitter=-0.01)
        with pytest.raises(ValueError):
            LatencyModel(0.1, minimum=-0.01)
