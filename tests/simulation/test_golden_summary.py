"""Golden determinism tests for the simulator hot-path overhaul.

The throughput overhaul (PR 4) rewired the event queue, workload sampling
and the cache fast paths for raw simulated-ops/sec.  Its hard constraint is
that none of it changes *what* a seeded simulation computes: the summaries
below were produced by the pre-overhaul implementation (commit 2326f94) and
every value must match exactly -- not approximately -- forever after.
"""

from __future__ import annotations

import pytest

from repro import perf
from repro.simulation import CachingMode, SimulationConfig, Simulator
from repro.ttl import TTLEstimatorSpec
from repro.workloads import DatasetSpec, WorkloadSpec


def golden_config(mode: CachingMode, num_shards: int = 1) -> SimulationConfig:
    return SimulationConfig(
        mode=mode,
        workload=WorkloadSpec.read_heavy(),
        dataset=DatasetSpec(num_tables=2, documents_per_table=300, queries_per_table=30),
        num_clients=4,
        connections_per_client=50,
        ebf_refresh_interval=1.0,
        matching_nodes=2,
        duration=60.0,
        max_operations=3_000,
        seed=13,
        num_shards=num_shards,
    )


#: summary() of the pre-overhaul simulator for golden_config(...), verbatim.
GOLDEN_SUMMARIES = {
    (CachingMode.QUAESTOR, 1): {
        "throughput": 14718.436844591828,
        "mean_read_latency_ms": 8.615301002732833,
        "mean_query_latency_ms": 1.0542310848279033,
        "client_query_hit_rate": 0.9540034071550255,
        "client_read_hit_rate": 0.8171953255425709,
        "cdn_query_hit_rate": 0.04003407155025554,
        "cdn_read_hit_rate": 0.09599332220367279,
        "query_stale_rate": 0.31601362862010224,
        "read_stale_rate": 0.07679465776293823,
    },
    (CachingMode.QUAESTOR, 2): {
        "throughput": 14748.098442131037,
        "mean_read_latency_ms": 8.985780516529493,
        "mean_query_latency_ms": 1.0433257717207067,
        "client_query_hit_rate": 0.9565587734241908,
        "client_read_hit_rate": 0.8196994991652755,
        "cdn_query_hit_rate": 0.03747870528109029,
        "cdn_read_hit_rate": 0.09265442404006678,
        "query_stale_rate": 0.31601362862010224,
        "read_stale_rate": 0.07762938230383973,
    },
    (CachingMode.EBF_ONLY, 1): {
        "throughput": 14214.35669077117,
        "mean_read_latency_ms": 23.28213335018467,
        "mean_query_latency_ms": 7.708448225460378,
        "client_query_hit_rate": 0.948892674616695,
        "client_read_hit_rate": 0.8155258764607679,
        "cdn_query_hit_rate": 0.0,
        "cdn_read_hit_rate": 0.0,
        "query_stale_rate": 0.2870528109028961,
        "read_stale_rate": 0.0667779632721202,
    },
    (CachingMode.CDN_ONLY, 1): {
        "throughput": 9008.488042838073,
        "mean_read_latency_ms": 23.680843592658025,
        "mean_query_latency_ms": 7.536732475013286,
        "client_query_hit_rate": 0.0,
        "client_read_hit_rate": 0.0,
        "cdn_query_hit_rate": 0.975298126064736,
        "cdn_read_hit_rate": 0.8489148580968281,
        "query_stale_rate": 0.1465076660988075,
        "read_stale_rate": 0.05008347245409015,
    },
    (CachingMode.UNCACHED, 1): {
        "throughput": 1365.5822953321997,
        "mean_read_latency_ms": 150.1042649118806,
        "mean_query_latency_ms": 150.26777049156806,
        "client_query_hit_rate": 0.0,
        "client_read_hit_rate": 0.0,
        "cdn_query_hit_rate": 0.0,
        "cdn_read_hit_rate": 0.0,
        "query_stale_rate": 0.0,
        "read_stale_rate": 0.0,
    },
}


class TestGoldenSummaries:
    @pytest.mark.parametrize(
        "mode,num_shards", sorted(GOLDEN_SUMMARIES, key=lambda item: (item[0].value, item[1]))
    )
    def test_summary_value_identical_to_pre_overhaul(self, mode, num_shards):
        result = Simulator(golden_config(mode, num_shards)).run()
        assert result.summary() == GOLDEN_SUMMARIES[(mode, num_shards)]

    def test_legacy_estimator_spec_reproduces_the_pinned_summaries(self):
        """The TTL bake-off confirmed the pre-existing estimator as the
        default, and ``TTLEstimatorSpec.legacy()`` freezes it: runs under the
        explicit legacy flag must keep reproducing the golden summaries even
        if the ``quaestor`` registry entry is ever retuned."""
        config = golden_config(CachingMode.QUAESTOR)
        config.ttl_estimator = TTLEstimatorSpec.legacy()
        result = Simulator(config).run()
        assert result.summary() == GOLDEN_SUMMARIES[(CachingMode.QUAESTOR, 1)]

    def test_legacy_hot_paths_produce_the_same_summary(self):
        """The flagged legacy implementation is the benchmark baseline; it
        must agree with the optimized paths value-for-value."""
        fast = Simulator(golden_config(CachingMode.QUAESTOR)).run().summary()
        with perf.legacy_hot_paths():
            legacy = Simulator(golden_config(CachingMode.QUAESTOR)).run().summary()
        assert legacy == fast

    def test_legacy_context_restores_fast_paths(self):
        assert perf.FAST_PATHS
        with perf.legacy_hot_paths():
            assert not perf.FAST_PATHS
        assert perf.FAST_PATHS
