"""Tests for the discrete-event queue and the latency models."""

from __future__ import annotations

import pytest

from repro.clock import VirtualClock
from repro.simulation import EventQueue, LatencyModel, NetworkTopology, REGION_RTT_SECONDS


class TestEventQueue:
    def test_events_execute_in_timestamp_order(self):
        queue = EventQueue()
        executed = []
        queue.schedule(3.0, lambda: executed.append("c"))
        queue.schedule(1.0, lambda: executed.append("a"))
        queue.schedule(2.0, lambda: executed.append("b"))
        clock = VirtualClock()
        queue.run_until(clock, 10.0)
        assert executed == ["a", "b", "c"]
        assert clock.now() == 10.0

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        executed = []
        queue.schedule(1.0, lambda: executed.append("first"))
        queue.schedule(1.0, lambda: executed.append("second"))
        queue.run_until(VirtualClock(), 2.0)
        assert executed == ["first", "second"]

    def test_run_until_respects_end_time(self):
        queue = EventQueue()
        executed = []
        queue.schedule(1.0, lambda: executed.append("early"))
        queue.schedule(5.0, lambda: executed.append("late"))
        clock = VirtualClock()
        count = queue.run_until(clock, 2.0)
        assert count == 1
        assert executed == ["early"]
        assert len(queue) == 1

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        executed = []
        event = queue.schedule(1.0, lambda: executed.append("cancelled"))
        queue.schedule(2.0, lambda: executed.append("kept"))
        event.cancel()
        queue.run_until(VirtualClock(), 5.0)
        assert executed == ["kept"]

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.schedule(1.0, lambda: None)
        queue.schedule(4.0, lambda: None)
        event.cancel()
        assert queue.peek_time() == 4.0

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0, lambda: None)

    def test_pop_on_empty(self):
        assert EventQueue().pop() is None
        assert not EventQueue()

    def test_len_is_live_event_count(self):
        queue = EventQueue()
        events = [queue.schedule(float(i), lambda: None) for i in range(10)]
        assert len(queue) == 10
        events[3].cancel()
        events[7].cancel()
        assert len(queue) == 8
        # Double-cancel must not double-count.
        events[3].cancel()
        assert len(queue) == 8
        queue.pop()
        assert len(queue) == 7
        assert bool(queue)

    def test_schedule_many_matches_individual_schedules(self):
        """Bulk scheduling preserves timestamp order and insertion-order ties."""
        times = [2.0, 1.0, 1.0, 3.0, 1.0, 0.5]
        reference = EventQueue()
        ref_order = []
        for index, timestamp in enumerate(times):
            reference.schedule(timestamp, lambda i=index: ref_order.append(i))
        bulk = EventQueue()
        bulk_order = []
        bulk.schedule_many(
            (timestamp, lambda i=index: bulk_order.append(i))
            for index, timestamp in enumerate(times)
        )
        assert len(bulk) == len(times)
        reference.run_until(VirtualClock(), 10.0)
        bulk.run_until(VirtualClock(), 10.0)
        assert bulk_order == ref_order

    def test_schedule_many_rejects_negative_timestamps(self):
        with pytest.raises(ValueError):
            EventQueue().schedule_many([(1.0, lambda: None), (-0.1, lambda: None)])

    def test_schedule_many_rejects_bad_batches_atomically(self):
        """A bad timestamp mid-batch must not leave a partial batch behind."""
        queue = EventQueue()
        queue.schedule(5.0, lambda: None)
        with pytest.raises(ValueError):
            queue.schedule_many([(0.5, lambda: None), (-1.0, lambda: None)])
        assert len(queue) == 1
        assert queue.peek_time() == 5.0

    def test_cancel_after_pop_is_a_noop(self):
        """Cancelling an already-popped event must not corrupt the counters."""
        queue = EventQueue()
        first = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        popped = queue.pop()
        assert popped is first
        first.cancel()
        first.cancel()
        assert len(queue) == 1
        assert bool(queue)
        assert queue.pop().timestamp == 2.0

    def test_schedule_many_onto_populated_queue(self):
        queue = EventQueue()
        executed = []
        queue.schedule(2.0, lambda: executed.append("single"))
        queue.schedule_many([(1.0, lambda: executed.append("bulk-early")),
                            (3.0, lambda: executed.append("bulk-late"))])
        queue.run_until(VirtualClock(), 5.0)
        assert executed == ["bulk-early", "single", "bulk-late"]

    def test_cancellation_during_run_until(self):
        """An event cancelled by an earlier event in the same run is skipped."""
        queue = EventQueue()
        executed = []
        victim = queue.schedule(2.0, lambda: executed.append("victim"))
        queue.schedule(1.0, lambda: (executed.append("assassin"), victim.cancel()))
        queue.schedule(3.0, lambda: executed.append("survivor"))
        count = queue.run_until(VirtualClock(), 5.0)
        assert executed == ["assassin", "survivor"]
        assert count == 2
        assert queue.processed == 2

    def test_pop_if_before_respects_cancelled_head_and_bound(self):
        queue = EventQueue()
        head = queue.schedule(1.0, lambda: None, label="head")
        queue.schedule(2.0, lambda: None, label="mid")
        queue.schedule(9.0, lambda: None, label="tail")
        head.cancel()
        event = queue.pop_if_before(5.0)
        assert event is not None and event.label == "mid"
        assert queue.pop_if_before(5.0) is None  # tail is beyond the bound
        assert len(queue) == 1

    def test_mass_cancellation_compacts_lazily(self):
        """Cancelling most of the heap keeps len/peek/pop consistent."""
        queue = EventQueue()
        events = [queue.schedule(float(i), lambda: None) for i in range(100)]
        for event in events[:90]:
            event.cancel()
        assert len(queue) == 10
        assert queue.peek_time() == 90.0
        popped = []
        while queue:
            popped.append(queue.pop().timestamp)
        assert popped == [float(i) for i in range(90, 100)]


class TestLatencyModel:
    def test_zero_jitter_returns_mean(self):
        model = LatencyModel(mean=0.1)
        assert model.sample() == 0.1

    def test_jitter_respects_minimum(self):
        model = LatencyModel(mean=0.001, jitter=0.01, minimum=0.0005)
        assert all(model.sample() >= 0.0005 for _ in range(200))

    def test_reseed_reproducibility(self):
        model = LatencyModel(mean=0.1, jitter=0.01)
        model.reseed(5)
        first = [model.sample() for _ in range(10)]
        model.reseed(5)
        second = [model.sample() for _ in range(10)]
        assert first == second

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LatencyModel(mean=-1.0)
        with pytest.raises(ValueError):
            LatencyModel(mean=0.1, jitter=-0.1)


class TestNetworkTopology:
    def test_levels_have_expected_ordering(self):
        topology = NetworkTopology.no_jitter()
        client = topology.read_latency("client")
        cdn = topology.read_latency("cdn")
        origin = topology.read_latency("origin")
        assert client < cdn < origin
        assert origin > 0.1  # wide-area round trip dominates

    def test_write_latency_includes_origin_round_trip(self):
        topology = NetworkTopology.no_jitter()
        assert topology.write_latency() > topology.read_latency("cdn")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            NetworkTopology.no_jitter().read_latency("nonexistent")

    def test_region_table_contains_figure1_regions(self):
        assert {"Frankfurt", "California", "Sydney", "Tokyo"} <= set(REGION_RTT_SECONDS)
        assert REGION_RTT_SECONDS["Frankfurt"] < REGION_RTT_SECONDS["Sydney"]

    def test_reseed_applies_to_all_paths(self):
        topology = NetworkTopology()
        topology.reseed(11)
        first = (topology.cdn_hit.sample(), topology.origin_round_trip.sample())
        topology.reseed(11)
        second = (topology.cdn_hit.sample(), topology.origin_round_trip.sample())
        assert first == second
