"""Tests for the discrete-event queue and the latency models."""

from __future__ import annotations

import pytest

from repro.clock import VirtualClock
from repro.simulation import EventQueue, LatencyModel, NetworkTopology, REGION_RTT_SECONDS


class TestEventQueue:
    def test_events_execute_in_timestamp_order(self):
        queue = EventQueue()
        executed = []
        queue.schedule(3.0, lambda: executed.append("c"))
        queue.schedule(1.0, lambda: executed.append("a"))
        queue.schedule(2.0, lambda: executed.append("b"))
        clock = VirtualClock()
        queue.run_until(clock, 10.0)
        assert executed == ["a", "b", "c"]
        assert clock.now() == 10.0

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        executed = []
        queue.schedule(1.0, lambda: executed.append("first"))
        queue.schedule(1.0, lambda: executed.append("second"))
        queue.run_until(VirtualClock(), 2.0)
        assert executed == ["first", "second"]

    def test_run_until_respects_end_time(self):
        queue = EventQueue()
        executed = []
        queue.schedule(1.0, lambda: executed.append("early"))
        queue.schedule(5.0, lambda: executed.append("late"))
        clock = VirtualClock()
        count = queue.run_until(clock, 2.0)
        assert count == 1
        assert executed == ["early"]
        assert len(queue) == 1

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        executed = []
        event = queue.schedule(1.0, lambda: executed.append("cancelled"))
        queue.schedule(2.0, lambda: executed.append("kept"))
        event.cancel()
        queue.run_until(VirtualClock(), 5.0)
        assert executed == ["kept"]

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.schedule(1.0, lambda: None)
        queue.schedule(4.0, lambda: None)
        event.cancel()
        assert queue.peek_time() == 4.0

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0, lambda: None)

    def test_pop_on_empty(self):
        assert EventQueue().pop() is None
        assert not EventQueue()


class TestLatencyModel:
    def test_zero_jitter_returns_mean(self):
        model = LatencyModel(mean=0.1)
        assert model.sample() == 0.1

    def test_jitter_respects_minimum(self):
        model = LatencyModel(mean=0.001, jitter=0.01, minimum=0.0005)
        assert all(model.sample() >= 0.0005 for _ in range(200))

    def test_reseed_reproducibility(self):
        model = LatencyModel(mean=0.1, jitter=0.01)
        model.reseed(5)
        first = [model.sample() for _ in range(10)]
        model.reseed(5)
        second = [model.sample() for _ in range(10)]
        assert first == second

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LatencyModel(mean=-1.0)
        with pytest.raises(ValueError):
            LatencyModel(mean=0.1, jitter=-0.1)


class TestNetworkTopology:
    def test_levels_have_expected_ordering(self):
        topology = NetworkTopology.no_jitter()
        client = topology.read_latency("client")
        cdn = topology.read_latency("cdn")
        origin = topology.read_latency("origin")
        assert client < cdn < origin
        assert origin > 0.1  # wide-area round trip dominates

    def test_write_latency_includes_origin_round_trip(self):
        topology = NetworkTopology.no_jitter()
        assert topology.write_latency() > topology.read_latency("cdn")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            NetworkTopology.no_jitter().read_latency("nonexistent")

    def test_region_table_contains_figure1_regions(self):
        assert {"Frankfurt", "California", "Sydney", "Tokyo"} <= set(REGION_RTT_SECONDS)
        assert REGION_RTT_SECONDS["Frankfurt"] < REGION_RTT_SECONDS["Sydney"]

    def test_reseed_applies_to_all_paths(self):
        topology = NetworkTopology()
        topology.reseed(11)
        first = (topology.cdn_hit.sample(), topology.origin_round_trip.sample())
        topology.reseed(11)
        second = (topology.cdn_hit.sample(), topology.origin_round_trip.sample())
        assert first == second
