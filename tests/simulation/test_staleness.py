"""Tests for the staleness auditor (Delta-atomicity verification)."""

from __future__ import annotations

import pytest

from repro.simulation import StalenessAuditor


class TestVersionTracking:
    def test_current_version_follows_writes(self):
        auditor = StalenessAuditor()
        auditor.record_version("key", "v1", 1.0)
        auditor.record_version("key", "v2", 5.0)
        assert auditor.current_version("key") == "v2"
        assert auditor.current_version("key", at_time=3.0) == "v1"
        assert auditor.current_version("key", at_time=0.5) is None

    def test_duplicate_consecutive_versions_are_deduplicated(self):
        auditor = StalenessAuditor()
        auditor.record_version("key", "v1", 1.0)
        auditor.record_version("key", "v1", 2.0)
        assert len(auditor._history["key"]) == 1

    def test_unknown_key(self):
        assert StalenessAuditor().current_version("missing") is None


class TestReadAudits:
    def test_fresh_read_passes(self):
        auditor = StalenessAuditor()
        auditor.record_version("key", "v1", 1.0)
        audit = auditor.audit_read("key", "v1", read_time=2.0)
        assert not audit.stale
        assert auditor.stale_rate == 0.0

    def test_stale_read_detected_with_duration(self):
        auditor = StalenessAuditor()
        auditor.record_version("key", "v1", 1.0)
        auditor.record_version("key", "v2", 5.0)
        audit = auditor.audit_read("key", "v1", read_time=8.0)
        assert audit.stale
        assert audit.staleness == pytest.approx(3.0)
        assert auditor.stale_reads == 1

    def test_read_before_supersession_is_fresh(self):
        auditor = StalenessAuditor()
        auditor.record_version("key", "v1", 1.0)
        auditor.record_version("key", "v2", 5.0)
        assert not auditor.audit_read("key", "v1", read_time=4.0).stale

    def test_aba_content_is_not_flagged(self):
        """A result that reverts to an earlier state is fresh again (ABA)."""
        auditor = StalenessAuditor()
        auditor.record_version("key", "vA", 1.0)
        auditor.record_version("key", "vB", 5.0)
        auditor.record_version("key", "vA", 10.0)
        assert not auditor.audit_read("key", "vA", read_time=12.0).stale

    def test_aba_read_between_transitions_is_still_stale(self):
        auditor = StalenessAuditor()
        auditor.record_version("key", "vA", 1.0)
        auditor.record_version("key", "vB", 5.0)
        auditor.record_version("key", "vA", 10.0)
        audit = auditor.audit_read("key", "vA", read_time=7.0)
        assert audit.stale
        assert audit.staleness == pytest.approx(2.0)

    def test_unknown_version_treated_as_fresh(self):
        auditor = StalenessAuditor()
        auditor.record_version("key", "v1", 1.0)
        assert not auditor.audit_read("key", "unknown-version", read_time=2.0).stale

    def test_none_version_treated_as_fresh(self):
        auditor = StalenessAuditor()
        assert not auditor.audit_read("key", None, read_time=2.0).stale

    def test_in_flight_write_not_counted_stale(self):
        """Observing a version that only becomes authoritative later is fine."""
        auditor = StalenessAuditor()
        auditor.record_version("key", "v1", 1.0)
        auditor.record_version("key", "v2", 5.0)
        assert not auditor.audit_read("key", "v2", read_time=4.9).stale


class TestAggregates:
    def test_rates_and_maximum(self):
        auditor = StalenessAuditor()
        auditor.record_version("key", "v1", 0.0)
        auditor.record_version("key", "v2", 10.0)
        auditor.audit_read("key", "v2", read_time=11.0)   # fresh
        auditor.audit_read("key", "v1", read_time=12.0)   # stale by 2
        auditor.audit_read("key", "v1", read_time=15.0)   # stale by 5
        assert auditor.reads_audited == 3
        assert auditor.stale_rate == pytest.approx(2 / 3)
        assert auditor.max_staleness == pytest.approx(5.0)
        assert auditor.mean_staleness == pytest.approx(3.5)
        assert len(auditor.staleness_samples()) == 2

    def test_reset_counters_keeps_history(self):
        auditor = StalenessAuditor()
        auditor.record_version("key", "v1", 0.0)
        auditor.audit_read("key", "v1", read_time=1.0)
        auditor.reset_counters()
        assert auditor.reads_audited == 0
        assert auditor.current_version("key") == "v1"
