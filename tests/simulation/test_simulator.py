"""Tests for the Monte Carlo simulator (integration of all components)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.simulation import CachingMode, SimulationConfig, Simulator
from repro.simulation.simulator import run_simulation
from repro.workloads import DatasetSpec, WorkloadSpec


def small_config(mode: CachingMode, **overrides) -> SimulationConfig:
    defaults = dict(
        mode=mode,
        workload=WorkloadSpec.read_heavy(),
        dataset=DatasetSpec(num_tables=2, documents_per_table=300, queries_per_table=30),
        num_clients=4,
        connections_per_client=10,
        ebf_refresh_interval=1.0,
        matching_nodes=2,
        duration=60.0,
        max_operations=2_500,
        seed=13,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


@pytest.fixture(scope="module")
def quaestor_result():
    return Simulator(small_config(CachingMode.QUAESTOR)).run()


@pytest.fixture(scope="module")
def uncached_result():
    return Simulator(small_config(CachingMode.UNCACHED)).run()


class TestSimulationMechanics:
    def test_operations_and_duration_recorded(self, quaestor_result):
        assert quaestor_result.operations > 0
        assert quaestor_result.measured_duration > 0
        assert quaestor_result.throughput > 0

    def test_latency_histograms_populated(self, quaestor_result):
        assert quaestor_result.read_latency.count > 0
        assert quaestor_result.query_latency.count > 0
        assert quaestor_result.write_latency.count > 0

    def test_level_counts_sum_to_measured_reads(self, quaestor_result):
        total_level_counts = sum(
            sum(counts.values()) for counts in quaestor_result.level_counts.values()
        )
        assert total_level_counts == quaestor_result.operations

    def test_summary_keys(self, quaestor_result):
        summary = quaestor_result.summary()
        assert {"throughput", "mean_read_latency_ms", "client_query_hit_rate"} <= set(summary)

    def test_run_simulation_wrapper(self):
        result = run_simulation(small_config(CachingMode.QUAESTOR, max_operations=800))
        assert result.operations > 0

    def test_deterministic_given_seed(self):
        first = Simulator(small_config(CachingMode.QUAESTOR, max_operations=1_000)).run()
        second = Simulator(small_config(CachingMode.QUAESTOR, max_operations=1_000)).run()
        assert first.throughput == pytest.approx(second.throughput)
        assert first.client_query_hit_rate == pytest.approx(second.client_query_hit_rate)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            small_config(CachingMode.QUAESTOR, num_clients=0)
        with pytest.raises(ConfigurationError):
            small_config(CachingMode.QUAESTOR, warmup_fraction=1.5)
        with pytest.raises(ConfigurationError):
            small_config(CachingMode.QUAESTOR, origin_capacity=0)


class TestCachingModes:
    def test_uncached_mode_never_hits_caches(self, uncached_result):
        assert uncached_result.client_query_hit_rate == 0.0
        assert uncached_result.cdn_query_hit_rate == 0.0
        assert uncached_result.query_stale_rate == 0.0

    def test_uncached_latency_is_wide_area(self, uncached_result):
        assert uncached_result.query_latency.mean > 0.1

    def test_quaestor_beats_uncached_throughput(self, quaestor_result, uncached_result):
        assert quaestor_result.throughput > 2.0 * uncached_result.throughput

    def test_quaestor_query_latency_far_below_uncached(self, quaestor_result, uncached_result):
        assert quaestor_result.query_latency.mean < 0.3 * uncached_result.query_latency.mean

    def test_quaestor_achieves_cache_hits(self, quaestor_result):
        assert quaestor_result.client_query_hit_rate > 0.3

    def test_cdn_only_mode_uses_cdn_not_client(self):
        result = Simulator(small_config(CachingMode.CDN_ONLY, max_operations=1_500)).run()
        assert result.client_query_hit_rate == 0.0
        assert result.cdn_query_hit_rate > 0.3

    def test_ebf_only_mode_has_no_cdn(self):
        result = Simulator(small_config(CachingMode.EBF_ONLY, max_operations=1_500)).run()
        assert result.cdn_query_hit_rate == 0.0
        assert result.client_query_hit_rate > 0.3

    def test_mode_capabilities(self):
        assert CachingMode.QUAESTOR.uses_cdn and CachingMode.QUAESTOR.uses_ebf
        assert not CachingMode.CDN_ONLY.uses_ebf
        assert not CachingMode.UNCACHED.uses_client_cache


class TestStalenessBound:
    def test_staleness_is_bounded_by_delta_plus_invalidation_delay(self):
        delta = 2.0
        config = small_config(
            CachingMode.QUAESTOR,
            ebf_refresh_interval=delta,
            max_operations=3_000,
            workload=WorkloadSpec.with_update_rate(0.05),
        )
        simulator = Simulator(config)
        simulator.run()
        slack = 0.2  # invalidation delay + jitter
        assert simulator.auditor.max_staleness <= delta + slack

    def test_smaller_delta_means_less_staleness(self):
        tight = Simulator(
            small_config(
                CachingMode.QUAESTOR,
                ebf_refresh_interval=0.5,
                workload=WorkloadSpec.with_update_rate(0.05),
            )
        )
        loose = Simulator(
            small_config(
                CachingMode.QUAESTOR,
                ebf_refresh_interval=20.0,
                workload=WorkloadSpec.with_update_rate(0.05),
            )
        )
        tight.run()
        loose.run()
        assert tight.auditor.max_staleness <= loose.auditor.max_staleness + 0.25
