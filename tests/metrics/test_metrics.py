"""Tests for histograms, counters, throughput windows and reports."""

from __future__ import annotations

import pytest

from repro.metrics import Counter, ExperimentReport, Histogram, ThroughputWindow, format_table


class TestHistogram:
    def test_mean_min_max(self):
        histogram = Histogram()
        histogram.record_many([1.0, 2.0, 3.0, 4.0])
        assert histogram.mean == 2.5
        assert histogram.minimum == 1.0
        assert histogram.maximum == 4.0
        assert histogram.count == 4

    def test_empty_histogram(self):
        histogram = Histogram()
        assert histogram.mean == 0.0
        assert histogram.percentile(0.99) == 0.0
        assert histogram.cdf() == []

    def test_percentiles(self):
        histogram = Histogram()
        histogram.record_many(range(1, 101))
        assert histogram.percentile(0.0) == 1
        assert histogram.percentile(1.0) == 100
        assert histogram.percentile(0.5) == pytest.approx(50.5)
        assert histogram.percentile(0.99) == pytest.approx(99.01)

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)

    def test_stddev(self):
        histogram = Histogram()
        histogram.record_many([2.0, 2.0, 2.0])
        assert histogram.stddev == 0.0
        histogram.record_many([0.0, 4.0])
        assert histogram.stddev > 0.0

    def test_cdf_at_points(self):
        histogram = Histogram()
        histogram.record_many([1, 2, 3, 4])
        cdf = dict(histogram.cdf([0, 2, 5]))
        assert cdf[0] == 0.0
        assert cdf[2] == 0.5
        assert cdf[5] == 1.0

    def test_cdf_without_points_is_monotone(self):
        histogram = Histogram()
        histogram.record_many([5, 1, 3, 3, 2])
        cdf = histogram.cdf()
        probabilities = [probability for _value, probability in cdf]
        assert probabilities == sorted(probabilities)
        assert probabilities[-1] == 1.0

    def test_buckets(self):
        histogram = Histogram()
        histogram.record_many([0.5, 1.5, 1.7, 9.0])
        buckets = histogram.buckets(width=1.0)
        assert buckets[0.0] == 1
        assert buckets[1.0] == 2
        assert buckets[9.0] == 1

    def test_bucket_cap(self):
        histogram = Histogram()
        histogram.record_many([1.0, 500.0])
        buckets = histogram.buckets(width=1.0, maximum=10.0)
        assert max(buckets) <= 10.0

    def test_bucket_value_equal_to_cap_stays_below_it(self):
        """A sample exactly at the cap must fold into the last bucket that
        *starts below* the cap, never open a bucket at (or past) it."""
        histogram = Histogram()
        histogram.record_many([10.0, 9.5, 1.0])
        buckets = histogram.buckets(width=1.0, maximum=10.0)
        assert max(buckets) < 10.0
        assert buckets == {1.0: 1, 9.0: 2}

    def test_bucket_value_beyond_cap_clamps_to_last_bucket(self):
        histogram = Histogram()
        histogram.record_many([500.0, 10.0, 10.0001])
        buckets = histogram.buckets(width=2.0, maximum=10.0)
        assert buckets == {8.0: 3}

    def test_bucket_cap_not_a_multiple_of_width(self):
        """A cap mid-bucket keeps the final partial bucket: its lower bound
        is below the cap, so overflow samples land there."""
        histogram = Histogram()
        histogram.record_many([10.2, 99.0, 3.0])
        buckets = histogram.buckets(width=1.0, maximum=10.5)
        assert buckets == {3.0: 1, 10.0: 2}
        assert max(buckets) < 10.5

    def test_bucket_default_cap_unchanged(self):
        """Without an explicit maximum the behavior is untouched: every
        sample keeps its natural bucket."""
        histogram = Histogram()
        histogram.record_many([0.5, 1.5, 1.7, 9.0])
        assert histogram.buckets(width=1.0) == {0.0: 1, 1.0: 2, 9.0: 1}

    def test_bucket_width_validation(self):
        with pytest.raises(ValueError):
            Histogram().buckets(0.0)

    def test_merge(self):
        first, second = Histogram(), Histogram()
        first.record(1.0)
        second.record(3.0)
        first.merge(second)
        assert first.count == 2
        assert first.mean == 2.0


class TestCounterAndThroughput:
    def test_counter_increment_and_get(self):
        counter = Counter()
        counter.increment("hits")
        counter.increment("hits", 2)
        assert counter.get("hits") == 3
        assert counter["misses"] == 0
        assert counter.as_dict() == {"hits": 3}

    def test_counter_reset(self):
        counter = Counter()
        counter.increment("hits")
        counter.reset()
        assert counter.get("hits") == 0

    def test_throughput_window(self):
        window = ThroughputWindow()
        window.record(10.0)
        window.record(12.0)
        window.record(14.0, operations=2)
        assert window.operations == 4
        assert window.duration == 4.0
        assert window.throughput() == pytest.approx(1.0)

    def test_throughput_with_explicit_window(self):
        window = ThroughputWindow()
        window.record(0.0, operations=100)
        assert window.throughput(window=10.0) == 10.0

    def test_empty_window(self):
        window = ThroughputWindow()
        assert window.throughput() == 0.0
        assert window.duration == 0.0

    def test_negative_operations_rejected(self):
        with pytest.raises(ValueError):
            ThroughputWindow().record(0.0, operations=-1)

    def test_counter_rejects_going_below_zero(self):
        """Counters are monotone tallies: a decrement below zero is a
        modelling bug and raises instead of silently going negative."""
        counter = Counter()
        counter.increment("hits", 2)
        with pytest.raises(ValueError, match="below zero"):
            counter.increment("hits", -3)
        # The failed decrement must not corrupt the stored total.
        assert counter.get("hits") == 2
        # Decrements that stay at or above zero remain legal.
        assert counter.increment("hits", -2) == 0

    def test_counter_rejects_initial_decrement(self):
        with pytest.raises(ValueError, match="below zero"):
            Counter().increment("fresh", -1)

    def test_throughput_single_sample_spans_zero_seconds(self):
        """Contract: one recorded timestamp means a zero-length window --
        duration 0.0 and throughput 0.0 (no elapsed time to divide by)."""
        window = ThroughputWindow()
        window.record(42.0, operations=5)
        assert window.operations == 5
        assert window.duration == 0.0
        assert window.throughput() == 0.0

    def test_throughput_out_of_order_timestamps_clamp_to_zero(self):
        """Contract: a last timestamp behind the first clamps the duration
        to zero (never negative), so throughput degrades to 0.0 instead of
        returning a negative rate."""
        window = ThroughputWindow()
        window.record(10.0)
        window.record(4.0)
        assert window.duration == 0.0
        assert window.throughput() == 0.0
        # An explicit window still works on the recorded operation count.
        assert window.throughput(window=2.0) == 1.0


class TestExperimentReport:
    def test_add_row_validates_columns(self):
        report = ExperimentReport("X", "desc", columns=["a", "b"])
        report.add_row(a=1, b=2)
        with pytest.raises(ValueError):
            report.add_row(a=1, c=3)

    def test_column_extraction(self):
        report = ExperimentReport("X", "desc", columns=["a", "b"])
        report.add_row(a=1, b=2)
        report.add_row(a=3, b=4)
        assert report.column("a") == [1, 3]
        with pytest.raises(KeyError):
            report.column("missing")

    def test_text_rendering_contains_data_and_notes(self):
        report = ExperimentReport("Figure X", "A description.", columns=["metric", "value"])
        report.add_row(metric="throughput", value=123.456)
        report.add_note("shape holds")
        text = report.to_text()
        assert "Figure X" in text
        assert "throughput" in text
        assert "123.456" in text
        assert "shape holds" in text

    def test_format_table_alignment(self):
        table = format_table(["col"], [{"col": "x"}, {"col": "longer"}])
        lines = table.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert len(set(len(line) for line in lines)) == 1
