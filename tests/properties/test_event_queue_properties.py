"""Property-based tests for the EventQueue under heavy lazy cancellation.

The queue's determinism guarantee -- pops come out in ``(timestamp,
insertion sequence)`` order, cancellation is lazy, compaction is invisible
-- is what the process-parallel simulator's epoch slicing leans on.  These
properties drive randomized interleavings of schedule/cancel/pop against a
simple sorted-list model.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.simulation import EventQueue

timestamps = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, width=32)
#: A script: for each scheduled event, its timestamp and whether it gets
#: cancelled before the drain.
schedule_scripts = st.lists(st.tuples(timestamps, st.booleans()), max_size=120)


def drain(queue, end_time=float("inf")):
    popped = []
    while True:
        event = queue.pop_if_before(end_time)
        if event is None:
            return popped
        popped.append(event)


class TestEventQueueProperties:
    @given(schedule_scripts)
    @settings(max_examples=80)
    def test_pops_preserve_timestamp_then_insertion_order(self, script):
        queue = EventQueue()
        handles = [queue.schedule(timestamp, lambda: None) for timestamp, _ in script]
        survivors = []
        for handle, (_timestamp, cancel) in zip(handles, script):
            if cancel:
                handle.cancel()
            else:
                survivors.append(handle)
        expected = sorted(survivors, key=lambda event: (event.timestamp, event.sequence))
        assert drain(queue) == expected
        assert len(queue) == 0

    @given(schedule_scripts, timestamps)
    @settings(max_examples=80)
    def test_epoch_slicing_is_invisible(self, script, boundary):
        """Draining through an intermediate boundary changes nothing."""
        whole = EventQueue()
        sliced = EventQueue()
        for timestamp, _ in script:
            whole.schedule(timestamp, lambda: None)
            sliced.schedule(timestamp, lambda: None)
        want = [(event.timestamp, event.sequence) for event in drain(whole)]
        first = drain(sliced, boundary)
        assert all(event.timestamp <= boundary for event in first)
        got = [(event.timestamp, event.sequence) for event in first + drain(sliced)]
        assert got == want

    @given(schedule_scripts)
    @settings(max_examples=60)
    def test_compaction_never_drops_live_events(self, script):
        """Cancelling enough events to trigger _compact loses nothing live."""
        queue = EventQueue()
        handles = [queue.schedule(timestamp, lambda: None) for timestamp, _ in script]
        # Cancel every other event, then every remaining even-sequence event:
        # repeatedly pushes the cancelled-in-heap debt over the compaction
        # threshold (cancelled * 2 > heap size).
        survivors = list(handles)
        for round_start in (1, 2):
            for index in range(round_start, len(survivors), 2):
                survivors[index].cancel()
            survivors = [event for event in survivors if not event.cancelled]
        assert len(queue) == len(survivors)
        expected = sorted(survivors, key=lambda event: (event.timestamp, event.sequence))
        assert drain(queue) == expected

    @given(schedule_scripts)
    @settings(max_examples=60)
    def test_interleaved_pop_and_cancel(self, script):
        """Cancel-after-partial-drain only affects still-queued events."""
        queue = EventQueue()
        handles = [queue.schedule(timestamp, lambda: None) for timestamp, _ in script]
        half = len(handles) // 2
        popped = [queue.pop() for _ in range(half)]
        popped = [event for event in popped if event is not None]
        for handle, (_timestamp, cancel) in zip(handles, script):
            if cancel:
                handle.cancel()  # no-op for already-popped events
        remaining = drain(queue)
        assert [event for event in remaining if event.cancelled] == []
        assert len(popped) + len(remaining) + sum(
            1 for event in handles if event.cancelled and event not in popped
        ) == len(handles)
        # Ordering still holds across the whole observed stream.
        observed = popped + remaining
        keys = [(event.timestamp, event.sequence) for event in observed]
        assert keys == sorted(keys)

    @given(st.lists(timestamps, max_size=80), st.lists(timestamps, max_size=80))
    @settings(max_examples=60)
    def test_schedule_many_ties_break_like_sequential_schedules(self, first, second):
        batched = EventQueue()
        sequential = EventQueue()
        batched.schedule_many((timestamp, lambda: None) for timestamp in first)
        for timestamp in first:
            sequential.schedule(timestamp, lambda: None)
        batched.schedule_many((timestamp, lambda: None) for timestamp in second)
        for timestamp in second:
            sequential.schedule(timestamp, lambda: None)
        want = [(event.timestamp, event.sequence) for event in drain(sequential)]
        got = [(event.timestamp, event.sequence) for event in drain(batched)]
        assert got == want
