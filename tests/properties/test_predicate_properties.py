"""Property-based tests for the predicate matcher and update operators."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.db.documents import compare_values, deep_copy
from repro.db.predicates import matches
from repro.db.updates import apply_update

field_names = st.sampled_from(["views", "likes", "score", "rank"])
scalar_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False),
)

documents = st.fixed_dictionaries(
    {
        "_id": st.text(min_size=1, max_size=8),
        "views": st.integers(min_value=0, max_value=1000),
        "title": st.text(max_size=12),
        "tags": st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=4),
    }
)


class TestPredicateProperties:
    @given(documents)
    @settings(max_examples=80)
    def test_empty_filter_matches_everything(self, document):
        assert matches(document, {})

    @given(documents, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=80)
    def test_comparison_operators_agree_with_python(self, document, threshold):
        views = document["views"]
        assert matches(document, {"views": {"$gt": threshold}}) == (views > threshold)
        assert matches(document, {"views": {"$gte": threshold}}) == (views >= threshold)
        assert matches(document, {"views": {"$lt": threshold}}) == (views < threshold)
        assert matches(document, {"views": {"$lte": threshold}}) == (views <= threshold)
        assert matches(document, {"views": {"$eq": threshold}}) == (views == threshold)
        assert matches(document, {"views": {"$ne": threshold}}) == (views != threshold)

    @given(documents, st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=5))
    @settings(max_examples=60)
    def test_in_is_disjunction_of_equalities(self, document, candidates):
        as_in = matches(document, {"views": {"$in": candidates}})
        as_or = matches(document, {"$or": [{"views": value} for value in candidates]})
        assert as_in == as_or

    @given(documents, st.sampled_from(["a", "b", "c", "d", "z"]))
    @settings(max_examples=60)
    def test_tag_containment_equals_python_membership(self, document, tag):
        assert matches(document, {"tags": tag}) == (tag in document["tags"])

    @given(documents, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=60)
    def test_not_is_complement(self, document, threshold):
        positive = matches(document, {"views": {"$gt": threshold}})
        negative = matches(document, {"views": {"$not": {"$gt": threshold}}})
        assert positive != negative

    @given(documents, st.integers(min_value=0, max_value=1000), st.sampled_from(["a", "b", "z"]))
    @settings(max_examples=60)
    def test_de_morgan_nor_equals_not_or(self, document, threshold, tag):
        clauses = [{"views": {"$gt": threshold}}, {"tags": tag}]
        assert matches(document, {"$nor": clauses}) == (not matches(document, {"$or": clauses}))

    @given(documents)
    @settings(max_examples=60)
    def test_matching_does_not_mutate_document(self, document):
        snapshot = deep_copy(document)
        matches(document, {"views": {"$gt": 10}, "tags": "a"})
        assert document == snapshot


class TestCompareValuesProperties:
    values = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-50, max_value=50),
        st.text(max_size=5),
        st.lists(st.integers(min_value=-5, max_value=5), max_size=3),
    )

    @given(values, values)
    @settings(max_examples=100)
    def test_antisymmetry(self, left, right):
        assert compare_values(left, right) == -compare_values(right, left)

    @given(values)
    @settings(max_examples=60)
    def test_reflexivity(self, value):
        assert compare_values(value, value) == 0

    @given(values, values, values)
    @settings(max_examples=100)
    def test_transitivity_of_ordering(self, a, b, c):
        ordered = sorted([a, b, c], key=lambda value: _OrderKey(value))
        assert compare_values(ordered[0], ordered[1]) <= 0
        assert compare_values(ordered[1], ordered[2]) <= 0
        assert compare_values(ordered[0], ordered[2]) <= 0


class _OrderKey:
    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return compare_values(self.value, other.value) < 0


class TestUpdateProperties:
    @given(documents, field_names, scalar_values)
    @settings(max_examples=80)
    def test_set_then_read_back(self, document, field, value):
        updated = apply_update(document, {"$set": {field: value}})
        assert updated[field] == value

    @given(documents, st.integers(min_value=-100, max_value=100), st.integers(min_value=-100, max_value=100))
    @settings(max_examples=80)
    def test_inc_composes_additively(self, document, first, second):
        in_two_steps = apply_update(
            apply_update(document, {"$inc": {"views": first}}), {"$inc": {"views": second}}
        )
        in_one_step = apply_update(document, {"$inc": {"views": first + second}})
        assert in_two_steps["views"] == in_one_step["views"]

    @given(documents, st.sampled_from(["a", "b", "c", "x"]))
    @settings(max_examples=60)
    def test_add_to_set_is_idempotent(self, document, tag):
        once = apply_update(document, {"$addToSet": {"tags": tag}})
        twice = apply_update(once, {"$addToSet": {"tags": tag}})
        assert once["tags"] == twice["tags"]
        assert tag in twice["tags"]

    @given(documents, st.sampled_from(["a", "b", "c"]))
    @settings(max_examples=60)
    def test_pull_removes_all_occurrences(self, document, tag):
        updated = apply_update(document, {"$pull": {"tags": tag}})
        assert tag not in updated["tags"]

    @given(documents, field_names, scalar_values)
    @settings(max_examples=80)
    def test_updates_never_mutate_the_input(self, document, field, value):
        snapshot = deep_copy(document)
        apply_update(document, {"$set": {field: value}})
        apply_update(document, {"$inc": {"views": 3}})
        apply_update(document, {"$push": {"tags": "zzz"}})
        assert document == snapshot

    @given(documents)
    @settings(max_examples=40)
    def test_update_preserves_id(self, document):
        updated = apply_update(document, {"$set": {"title": "x"}})
        assert updated["_id"] == document["_id"]
