"""Property-based tests for the Bloom filter family."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.bloom import BloomFilter, CountingBloomFilter, ExpiringBloomFilter
from repro.clock import VirtualClock

keys = st.text(min_size=1, max_size=30)
key_lists = st.lists(keys, min_size=0, max_size=60)


class TestBloomFilterProperties:
    @given(key_lists)
    @settings(max_examples=60)
    def test_no_false_negatives(self, members):
        bloom = BloomFilter(2048, 4)
        for key in members:
            bloom.add(key)
        assert all(bloom.contains(key) for key in members)

    @given(key_lists, key_lists)
    @settings(max_examples=40)
    def test_union_is_superset_of_both(self, left_keys, right_keys):
        left = BloomFilter(1024, 4)
        right = BloomFilter(1024, 4)
        for key in left_keys:
            left.add(key)
        for key in right_keys:
            right.add(key)
        merged = left | right
        assert all(merged.contains(key) for key in left_keys + right_keys)

    @given(key_lists)
    @settings(max_examples=40)
    def test_serialisation_round_trip(self, members):
        bloom = BloomFilter(1024, 3)
        for key in members:
            bloom.add(key)
        restored = BloomFilter.from_bytes(bloom.to_bytes(), 1024, 3)
        assert restored.to_bytes() == bloom.to_bytes()

    @given(key_lists)
    @settings(max_examples=40)
    def test_flat_export_of_counting_filter_equals_rebuild(self, members):
        counting = CountingBloomFilter(1024, 4)
        for key in members:
            counting.add(key)
        rebuilt = BloomFilter.from_keys(members, 1024, 4)
        assert counting.to_flat().to_bytes() == rebuilt.to_bytes()


class TestCountingFilterProperties:
    @given(key_lists, st.data())
    @settings(max_examples=50)
    def test_remove_never_causes_false_negatives_for_remaining_keys(self, members, data):
        counting = CountingBloomFilter(2048, 4)
        distinct = list(dict.fromkeys(members))
        for key in distinct:
            counting.add(key)
        if distinct:
            to_remove = data.draw(
                st.lists(st.sampled_from(distinct), unique=True, max_size=len(distinct))
            )
        else:
            to_remove = []
        for key in to_remove:
            assert counting.remove(key)
        remaining = [key for key in distinct if key not in set(to_remove)]
        assert all(counting.contains(key) for key in remaining)

    @given(key_lists)
    @settings(max_examples=40)
    def test_add_remove_everything_returns_to_empty(self, members):
        counting = CountingBloomFilter(2048, 4)
        distinct = list(dict.fromkeys(members))
        for key in distinct:
            counting.add(key)
        for key in distinct:
            counting.remove(key)
        assert counting.nonzero_slots() == 0
        assert len(counting) == 0


class TestExpiringBloomFilterProperties:
    @given(
        st.lists(
            st.tuples(keys, st.floats(min_value=0.5, max_value=60.0), st.floats(min_value=0.0, max_value=5.0)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=40)
    def test_invalidated_unexpired_keys_are_always_contained(self, operations):
        """No false negatives: every key invalidated within its TTL is flagged."""
        clock = VirtualClock()
        ebf = ExpiringBloomFilter(num_bits=4096, num_hashes=4, clock=clock)
        truly_stale: dict[str, float] = {}
        for key, ttl, gap in operations:
            ebf.report_read(key, ttl)
            clock.advance(gap)
            if ebf.report_invalidation(key):
                deadline = ebf.cacheable_until(key)
                if deadline is not None and deadline > clock.now():
                    truly_stale[key] = deadline
        now = clock.now()
        for key, deadline in truly_stale.items():
            if deadline > now:
                assert ebf.contains(key)

    @given(st.lists(st.tuples(keys, st.floats(min_value=0.1, max_value=10.0)), min_size=1, max_size=30))
    @settings(max_examples=40)
    def test_everything_expires_eventually(self, reads):
        clock = VirtualClock()
        ebf = ExpiringBloomFilter(num_bits=4096, num_hashes=4, clock=clock)
        for key, ttl in reads:
            ebf.report_read(key, ttl)
            ebf.report_invalidation(key)
        clock.advance(11.0)  # beyond every possible TTL
        ebf.expire()
        assert len(ebf) == 0
        assert all(not ebf.contains(key) for key, _ttl in reads)
