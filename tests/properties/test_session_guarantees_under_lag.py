"""Session guarantees under replication lag (property-based, seeded).

The SDK promises read-your-writes and monotonic reads *per session*
regardless of which node serves the read (Section 3.2 of the paper: own
writes and highest seen versions are cached client-side).  Replication adds
the adversary these guarantees exist for: a replica that is an arbitrary
amount behind the primary.  These properties drive random operation
sequences with random lag against a replicated cluster and assert the
session-level invariants hold on every interleaving, plus the server-side
watermark gating that causal reads rely on.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.clock import VirtualClock
from repro.cluster import ClusterClient, QuaestorCluster
from repro.client import QuaestorClient
from repro.core import ConsistencyLevel, QuaestorConfig, QuaestorServer
from repro.db import Database
from repro.invalidb import InvaliDBCluster
from repro.replication import ReplicaGroup, ReplicationConfig
from repro.simulation.latency import LatencyModel

KEYS = ["k0", "k1", "k2"]

operation_sequences = st.lists(
    st.tuples(
        st.sampled_from(KEYS),
        st.sampled_from(["read", "write"]),
        st.floats(min_value=0.0, max_value=0.2),
    ),
    min_size=1,
    max_size=40,
)


def build_replicated_client(lag_mean: float, consistency: ConsistencyLevel):
    clock = VirtualClock()
    cluster = QuaestorCluster(
        num_shards=1,
        clock=clock,
        matching_nodes=1,
        replication=ReplicationConfig(
            replication_factor=2, lag=LatencyModel(mean=lag_mean, jitter=0.0)
        ),
    )
    facade = ClusterClient(cluster)
    for key in KEYS:
        facade.handle_insert("posts", {"_id": key, "views": 0})
    clock.advance(1.0)
    client = QuaestorClient(
        facade, clock=clock, refresh_interval=0.5, consistency=consistency
    )
    client.connect()
    return clock, cluster, client


class TestSessionGuaranteesUnderLag:
    @given(ops=operation_sequences, lag=st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=25, deadline=None)
    def test_read_your_writes_and_monotonic_reads_delta_atomic(self, ops, lag):
        clock, _cluster, client = build_replicated_client(lag, ConsistencyLevel.DELTA_ATOMIC)
        highest_seen = {key: 0 for key in KEYS}
        own_written = {}
        for key, action, advance in ops:
            clock.advance(advance)
            if action == "write":
                result = client.update("posts", key, {"$inc": {"views": 1}})
                assert result.version is not None
                own_written[key] = result.version
                highest_seen[key] = max(highest_seen[key], result.version)
            else:
                result = client.read("posts", key)
                assert result.value is not None, "pre-inserted keys never vanish"
                version = result.version if result.version is not None else 0
                # Monotonic reads: the session never observes a version older
                # than one it has already seen, however stale the replica.
                assert version >= highest_seen[key]
                # Read-your-writes: the session's own writes are visible.
                if key in own_written:
                    assert version >= own_written[key]
                highest_seen[key] = max(highest_seen[key], version)

    @given(
        lag=st.floats(min_value=0.01, max_value=1.0),
        advance=st.floats(min_value=0.0, max_value=0.5),
        reads=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_own_insert_is_visible_despite_replica_lag(self, lag, advance, reads):
        # Regression: a lagging replica that has not applied the session's
        # own insert yet must not surface a 404 -- the group falls back to
        # the primary, so the acknowledged document is always readable.
        clock, _cluster, client = build_replicated_client(lag, ConsistencyLevel.DELTA_ATOMIC)
        result = client.insert("posts", {"_id": "fresh", "views": 1})
        assert result.version is not None
        clock.advance(advance)
        for _ in range(reads):  # round-robin over primary and replica
            read = client.read("posts", "fresh")
            assert read.value is not None, "own acknowledged insert vanished"
            assert read.value["views"] == 1

    @given(ops=operation_sequences, lag=st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=15, deadline=None)
    def test_guarantees_also_hold_for_causal_sessions(self, ops, lag):
        clock, _cluster, client = build_replicated_client(lag, ConsistencyLevel.CAUSAL)
        highest_seen = {key: 0 for key in KEYS}
        for key, action, advance in ops:
            clock.advance(advance)
            if action == "write":
                result = client.update("posts", key, {"$inc": {"views": 1}})
                highest_seen[key] = max(highest_seen[key], result.version or 0)
            else:
                result = client.read("posts", key)
                version = result.version if result.version is not None else 0
                assert version >= highest_seen[key]
                highest_seen[key] = max(highest_seen[key], version)


class TestCausalWatermarkGating:
    """Server-side gating: a causal read never serves state older than its
    frontier, independent of any client-side session fallback."""

    @given(
        num_writes=st.integers(min_value=1, max_value=10),
        frontier_index=st.integers(min_value=0, max_value=9),
        lag=st.floats(min_value=0.01, max_value=2.0),
        reads=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_causal_read_respects_the_frontier(self, num_writes, frontier_index, lag, reads):
        clock = VirtualClock()
        database = Database(clock=clock)
        database.create_collection("posts").insert({"_id": "doc", "views": 0})
        config = QuaestorConfig()
        server = QuaestorServer(database, config=config, invalidb=InvaliDBCluster())

        def factory(new_database, ebf, ttl_estimator):
            return QuaestorServer(
                new_database, config=config, invalidb=InvaliDBCluster(),
                ebf=ebf, ttl_estimator=ttl_estimator,
            )

        group = ReplicaGroup(
            shard_id=0, database=database, server=server, server_factory=factory,
            clock=clock,
            config=ReplicationConfig(
                replication_factor=2, lag=LatencyModel(mean=lag, jitter=0.0)
            ),
        )
        write_log = []  # (timestamp, version) per acknowledged write
        for _ in range(num_writes):
            clock.advance(0.05)
            database.update("posts", "doc", {"$inc": {"views": 1}})
            write_log.append((clock.now(), database.collection("posts").version("doc")))

        frontier_time, frontier_version = write_log[min(frontier_index, num_writes - 1)]
        clock.advance(0.01)
        for _ in range(reads):
            response = group.read(
                "posts", "doc",
                consistency=ConsistencyLevel.CAUSAL,
                min_timestamp=frontier_time,
            )
            assert response.body["version"] >= frontier_version
