"""Property-based tests for query normalisation, histograms and TTL maths."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.db.query import Query
from repro.metrics import Histogram
from repro.ttl.ewma import EwmaTracker
from repro.ttl.poisson import combined_write_rate, poisson_quantile_ttl

simple_criteria = st.dictionaries(
    st.sampled_from(["category", "views", "author", "tags"]),
    st.one_of(st.integers(min_value=0, max_value=50), st.text(max_size=6)),
    max_size=3,
)


class TestQueryNormalisationProperties:
    @given(simple_criteria)
    @settings(max_examples=60)
    def test_key_order_does_not_matter(self, criteria):
        reversed_criteria = dict(reversed(list(criteria.items())))
        assert Query("posts", criteria) == Query("posts", reversed_criteria)

    @given(simple_criteria)
    @settings(max_examples=60)
    def test_cache_key_is_stable(self, criteria):
        assert Query("posts", criteria).cache_key == Query("posts", criteria).cache_key

    @given(simple_criteria, simple_criteria)
    @settings(max_examples=60)
    def test_equal_keys_imply_equal_queries(self, left, right):
        first, second = Query("posts", left), Query("posts", right)
        if first.cache_key == second.cache_key:
            assert first == second


class TestHistogramProperties:
    samples = st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=200,
    )

    @given(samples, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=80)
    def test_percentiles_bounded_by_min_and_max(self, values, fraction):
        histogram = Histogram()
        histogram.record_many(values)
        percentile = histogram.percentile(fraction)
        assert min(values) - 1e-9 <= percentile <= max(values) + 1e-9

    @given(samples)
    @settings(max_examples=60)
    def test_cdf_is_monotone_and_ends_at_one(self, values):
        histogram = Histogram()
        histogram.record_many(values)
        cdf = histogram.cdf()
        probabilities = [probability for _value, probability in cdf]
        assert all(b >= a for a, b in zip(probabilities, probabilities[1:]))
        assert probabilities[-1] == 1.0

    @given(samples)
    @settings(max_examples=60)
    def test_mean_between_min_and_max(self, values):
        histogram = Histogram()
        histogram.record_many(values)
        assert min(values) - 1e-9 <= histogram.mean <= max(values) + 1e-9

    @given(samples, samples)
    @settings(max_examples=40)
    def test_merge_preserves_count_and_bounds(self, left, right):
        first, second = Histogram(), Histogram()
        first.record_many(left)
        second.record_many(right)
        first.merge(second)
        assert first.count == len(left) + len(right)
        assert first.maximum == max(max(left), max(right))


class TestTtlMathsProperties:
    rates = st.floats(min_value=1e-6, max_value=10.0, allow_nan=False)
    quantiles = st.floats(min_value=0.01, max_value=0.99)

    @given(rates, quantiles)
    @settings(max_examples=80)
    def test_quantile_ttl_satisfies_cdf(self, rate, quantile):
        """F(ttl) = 1 - exp(-rate * ttl) must equal the requested quantile."""
        ttl = poisson_quantile_ttl(rate, quantile)
        assert 1.0 - math.exp(-rate * ttl) == pytest_approx(quantile)

    @given(st.lists(rates, min_size=1, max_size=20))
    @settings(max_examples=60)
    def test_combined_rate_at_least_max_individual(self, individual_rates):
        combined = combined_write_rate(individual_rates)
        assert combined >= max(individual_rates) - 1e-12

    @given(rates, quantiles, quantiles)
    @settings(max_examples=60)
    def test_ttl_monotone_in_quantile(self, rate, first, second):
        low, high = sorted((first, second))
        assert poisson_quantile_ttl(rate, low) <= poisson_quantile_ttl(rate, high)

    @given(st.lists(st.floats(min_value=0.0, max_value=1000.0, allow_nan=False), min_size=1, max_size=50))
    @settings(max_examples=60)
    def test_ewma_stays_within_observed_range(self, observations):
        tracker = EwmaTracker(alpha=0.7)
        for observation in observations:
            value = tracker.update("key", observation)
        assert min(observations) - 1e-9 <= value <= max(observations) + 1e-9


def pytest_approx(value: float):
    import pytest

    return pytest.approx(value, rel=1e-9, abs=1e-12)
