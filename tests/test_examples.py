"""Smoke tests keeping the runnable examples working.

Only the fast examples are executed here (the flash-sale and Delta-sweep
examples run full Monte Carlo simulations and are exercised by the benchmark
suite instead).
"""

from __future__ import annotations

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "blog_platform.py",
    "realtime_dashboard.py",
    "failover_drill.py",
    "consistency_audit.py",
    "latency_attribution.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_to_completion(script, capsys):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"example {script} produced no output"


def test_quickstart_demonstrates_the_caching_lifecycle(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    output = capsys.readouterr().out
    # The walkthrough must show a cache hit, bounded staleness and a revalidation.
    assert "'client'" in output
    assert "bounded staleness" in output
    assert "revalidated, now fresh" in output


def test_dashboard_example_reports_live_changes(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "realtime_dashboard.py"), run_name="__main__")
    output = capsys.readouterr().out
    assert "[orders]" in output and "add" in output
    assert "awaiting shipment" in output
    assert "dashboard closed" in output


def test_consistency_audit_prints_verdicts_and_passes(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "consistency_audit.py"), run_name="__main__")
    output = capsys.readouterr().out
    # Every guarantee gets a verdict row...
    for guarantee in (
        "delta-atomicity",
        "read-your-writes",
        "monotonic-reads",
        "causal-frontier",
    ):
        assert guarantee in output
    # ...the audit is clean and the self-test is not vacuous.
    assert "PASS" in output and "FAIL" not in output
    assert "MISSED" not in output and "detected" in output


def test_latency_attribution_breaks_down_p50_vs_p99(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "latency_attribution.py"), run_name="__main__")
    output = capsys.readouterr().out
    # Both percentile breakdowns are printed...
    assert "top stages at p50" in output
    assert "top stages at p99" in output
    # ...the brownout actually fired and shows up as attributed stages...
    assert "faults injected" in output
    assert "gray.slow" in output and "net.origin" in output
    # ...and the fleet-wide table reports (full) attribution coverage.
    assert "fleet-wide attribution" in output
    assert "coverage min 1.00" in output


def test_failover_drill_shows_the_availability_story(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "failover_drill.py"), run_name="__main__")
    output = capsys.readouterr().out
    # The scripted crash, the promotion and the rejoin all happen...
    assert "crash" in output and "failover" in output and "recover" in output
    assert "time to recover" in output
    # ...and the dashboard table covers every phase of the drill.
    for phase in ("healthy", "outage", "failed-over", "recovered"):
        assert phase in output
