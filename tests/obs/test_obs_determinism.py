"""Determinism gates for the observability layer.

Two hard guarantees pinned here:

1. **Observer effect is zero.**  Enabling tracing + metrics must not change
   a single summary value of a seeded run — including the golden summaries
   pinned since the hot-path overhaul (duplicated inline; test modules
   cannot import each other without a tests package).
2. **Parallel merges are byte-identical.**  Per-partition trace and metric
   state folded by ``ParallelSimulator`` must match the serial oracle's
   merge byte for byte, at every worker count.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.obs import (
    ObservabilityConfig,
    canonical_metrics_bytes,
    canonical_trace_bytes,
    latency_attribution,
)
from repro.obs.__main__ import main as obs_main, scenario_config
from repro.simulation import CachingMode, SimulationConfig, Simulator
from repro.simulation.parallel import ParallelSimulator, parity_config, serial_oracle
from repro.workloads import DatasetSpec, WorkloadSpec


def golden_config(
    mode: CachingMode,
    num_shards: int = 1,
    observability: ObservabilityConfig | None = None,
) -> SimulationConfig:
    """The exact config behind the pinned golden summaries (see module docstring)."""
    return SimulationConfig(
        mode=mode,
        workload=WorkloadSpec.read_heavy(),
        dataset=DatasetSpec(num_tables=2, documents_per_table=300, queries_per_table=30),
        num_clients=4,
        connections_per_client=50,
        ebf_refresh_interval=1.0,
        matching_nodes=2,
        duration=60.0,
        max_operations=3_000,
        seed=13,
        num_shards=num_shards,
        observability=observability,
    )


#: golden summary for ``golden_config(CachingMode.QUAESTOR, 1)``, verbatim
#: from tests/simulation/test_golden_summary.py.
GOLDEN_QUAESTOR_1 = {
    "throughput": 14718.436844591828,
    "mean_read_latency_ms": 8.615301002732833,
    "mean_query_latency_ms": 1.0542310848279033,
    "client_query_hit_rate": 0.9540034071550255,
    "client_read_hit_rate": 0.8171953255425709,
    "cdn_query_hit_rate": 0.04003407155025554,
    "cdn_read_hit_rate": 0.09599332220367279,
    "query_stale_rate": 0.31601362862010224,
    "read_stale_rate": 0.07679465776293823,
}


class TestTracingIsInvisible:
    @pytest.mark.parametrize("num_shards", [1, 2])
    def test_golden_summary_identical_tracing_off_and_on(self, num_shards):
        off = Simulator(golden_config(CachingMode.QUAESTOR, num_shards)).run().summary()
        traced = Simulator(
            golden_config(
                CachingMode.QUAESTOR, num_shards, observability=ObservabilityConfig.full()
            )
        )
        on = traced.run().summary()
        assert on == off
        if num_shards == 1:
            assert on == GOLDEN_QUAESTOR_1
        spans = traced.trace_spans()
        assert spans, "tracing on must actually record spans"
        assert latency_attribution(spans)["min_coverage"] >= 0.95

    def test_sampling_rate_does_not_change_results(self):
        full = Simulator(
            golden_config(CachingMode.QUAESTOR, observability=ObservabilityConfig.full())
        )
        sampled = Simulator(
            golden_config(
                CachingMode.QUAESTOR,
                observability=ObservabilityConfig(sample_every=7),
            )
        )
        assert full.run().summary() == sampled.run().summary() == GOLDEN_QUAESTOR_1
        # Sampled traces are a strict subset: fewer roots, same request mix.
        full_roots = len([s for s in full.trace_spans() if s.parent_id is None])
        sampled_roots = len([s for s in sampled.trace_spans() if s.parent_id is None])
        assert 0 < sampled_roots < full_roots

    def test_faulted_resilient_scenario_parity(self):
        """The brownout + resilience scenario the CLI runs: tracing must be
        invisible on the gray-failure and retry code paths too."""
        off = Simulator(scenario_config(13, 800)).run().summary()
        traced = Simulator(scenario_config(13, 800, ObservabilityConfig.full()))
        on = traced.run().summary()
        assert on == off
        assert on["faults_injected"] > 0, "scenario must actually exercise faults"
        attribution = latency_attribution(traced.trace_spans())
        assert attribution["min_coverage"] >= 0.95

    def test_metrics_agree_with_the_result_summary(self):
        simulator = Simulator(
            golden_config(CachingMode.QUAESTOR, observability=ObservabilityConfig.full())
        )
        result = simulator.run()
        counters, _gauges, histograms, series = simulator.metrics_state()
        ops_total = sum(
            value for name, _labels, value in counters if name == "sim_operations_total"
        )
        assert ops_total == result.operations
        latency_rows = [row for row in histograms if row[0] == "sim_request_latency_seconds"]
        assert sum(len(samples) for _n, _l, samples in latency_rows) == result.operations
        # The lazy epoch sampler plus the finalize snapshot: the last series
        # point carries the final counter state.
        assert series, "finalize() must leave at least one snapshot"
        final_counters = series[-1][1]
        assert sum(v for n, _l, v in final_counters if n == "sim_operations_total") == ops_total


@pytest.fixture(scope="module")
def parallel_case():
    config = dataclasses.replace(
        parity_config(CachingMode.QUAESTOR, replication_factor=1, num_partitions=4),
        num_shards=4,
        num_clients=4,
        observability=ObservabilityConfig.full(),
    )
    oracle = serial_oracle(config, 4)
    return config, oracle


class TestParallelMergeParity:
    def test_oracle_records_trace_and_metrics(self, parallel_case):
        _config, oracle = parallel_case
        assert oracle.trace and oracle.metrics is not None
        # Root spans from later partitions keep pointing at their own
        # children after the id offset (no cross-partition edges).
        spans = oracle.trace_spans()
        by_id = {span.span_id: span for span in spans}
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in by_id

    @pytest.mark.parametrize("workers", [2, 4])
    def test_workers_byte_identical_to_serial_oracle(self, parallel_case, workers):
        config, oracle = parallel_case
        run = ParallelSimulator(config, num_partitions=4, num_workers=workers).run()
        assert run.summary() == oracle.summary()
        assert canonical_trace_bytes(run.trace) == canonical_trace_bytes(oracle.trace)
        assert canonical_metrics_bytes(run.metrics) == canonical_metrics_bytes(oracle.metrics)


class TestSmokeCli:
    def test_smoke_exits_zero_and_writes_artifacts(self, tmp_path, capsys):
        assert obs_main(["--smoke", "--out", str(tmp_path), "--ops", "400"]) == 0
        out = capsys.readouterr().out
        assert "summary parity: OK" in out
        assert "latency attribution:" in out
        assert (tmp_path / "metrics.prom").read_text().startswith("# TYPE")
        assert (tmp_path / "obs.json").exists()
