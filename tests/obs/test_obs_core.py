"""Unit tests for the observability layer: tracing, registry, export, analysis."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    Gauge,
    MetricsRegistry,
    ObservabilityConfig,
    Span,
    TraceRecorder,
    canonical_metrics_bytes,
    canonical_trace_bytes,
    coverage,
    critical_path,
    folded_stacks,
    index_spans,
    json_artifact,
    latency_attribution,
    merge_states,
    merge_trace_tuples,
    percentile_root,
    prometheus_text,
    render_report,
    render_waterfall,
    request_roots,
    spans_from_tuples,
    write_artifacts,
)
from repro.simulation.simulator import SimulationConfig


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self._now = now

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        self._now += dt


class TestObservabilityConfig:
    def test_defaults_and_full(self):
        config = ObservabilityConfig.full()
        assert config.trace and config.metrics
        assert config.sample_every == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ObservabilityConfig(sample_every=0)
        with pytest.raises(ValueError):
            ObservabilityConfig(metrics_interval=0.0)

    def test_simulation_config_rejects_wrong_type(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(observability="yes")


class TestTraceRecorder:
    def test_nested_spans_and_parents(self):
        clock = FakeClock()
        tracer = TraceRecorder(clock)
        root = tracer.begin("sdk.read")
        child = tracer.begin("cluster.read", shard=1)
        tracer.end(child)
        tracer.end(root)
        spans = tracer.spans()
        assert [span.name for span in spans] == ["sdk.read", "cluster.read"]
        assert spans[1].parent_id == spans[0].span_id
        assert spans[0].parent_id is None
        assert tracer.take_last_root() is spans[0]
        assert tracer.take_last_root() is None

    def test_events_require_an_open_span(self):
        tracer = TraceRecorder(FakeClock())
        assert tracer.event("router.route", shard=0) is None
        assert len(tracer) == 0
        root = tracer.begin("sdk.read")
        event = tracer.event("router.route", shard=0)
        tracer.end(root)
        assert event.parent_id == root.span_id
        assert event.attrs["shard"] == 0

    def test_unbalanced_end_raises(self):
        tracer = TraceRecorder(FakeClock())
        with pytest.raises(RuntimeError):
            tracer.end()

    def test_sampling_every_other_request(self):
        tracer = TraceRecorder(FakeClock(), sample_every=2)
        for index in range(4):
            root = tracer.begin("sdk.read")
            tracer.event("sdk.fetch")
            tracer.end(root)
            # Sampled requests return a Span, skipped ones None -- but the
            # stack stays balanced either way.
            assert (root is not None) == (index % 2 == 0)
        names = [span.name for span in tracer.spans()]
        assert names == ["sdk.read", "sdk.fetch", "sdk.read", "sdk.fetch"]

    def test_attach_cost_children(self):
        clock = FakeClock(5.0)
        tracer = TraceRecorder(clock)
        root = tracer.begin("sdk.read")
        tracer.end(root)
        part = tracer.attach(root, "net.origin", cost=0.15)
        assert part.parent_id == root.span_id
        assert part.cost == 0.15

    def test_round_trip_through_tuples(self):
        tracer = TraceRecorder(FakeClock())
        root = tracer.begin("sdk.read", key="k")
        tracer.end(root)
        rows = tracer.span_tuples()
        restored = spans_from_tuples(rows)
        assert [span.to_tuple() for span in restored] == list(rows)

    def test_merge_offsets_both_ids(self):
        def one_partition():
            tracer = TraceRecorder(FakeClock())
            root = tracer.begin("sdk.read")
            tracer.event("sdk.fetch")
            tracer.end(root)
            return tracer.span_tuples()

        merged = merge_trace_tuples([one_partition(), one_partition()])
        spans = spans_from_tuples(merged)
        assert [span.span_id for span in spans] == [0, 1, 2, 3]
        # The second partition's child points at the second partition's root.
        assert spans[3].parent_id == spans[2].span_id
        assert canonical_trace_bytes(merged) == canonical_trace_bytes(
            [span.to_tuple() for span in spans]
        )


class TestMetricsRegistry:
    def test_counters_are_monotone(self):
        registry = MetricsRegistry()
        registry.inc("requests_total", op="read")
        registry.inc("requests_total", 2, op="read")
        assert registry.counter_value("requests_total", op="read") == 3
        with pytest.raises(ValueError):
            registry.inc("requests_total", -1, op="read")

    def test_gauges_move_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("inflight")
        gauge.add(3)
        assert gauge.add(-2) == 1
        assert registry.gauge_value("inflight") == 1
        standalone = Gauge(5.0)
        standalone.set(1.0)
        assert standalone.value == 1.0

    def test_series_snapshots(self):
        registry = MetricsRegistry(interval=1.0)
        registry.inc("ops")
        registry.sample(1.0)
        registry.inc("ops")
        registry.sample(2.0)
        series = registry.series()
        assert [point[0] for point in series] == [1.0, 2.0]
        assert series[0][1] == (("ops", (), 1),)
        assert series[1][1] == (("ops", (), 2),)

    def test_merge_states_sums_and_concatenates(self):
        def one(value, sample):
            registry = MetricsRegistry()
            registry.inc("ops", value, op="read")
            registry.observe("lat", sample, op="read")
            registry.sample(1.0)
            return registry.state()

        merged = merge_states([one(2, 0.5), one(3, 0.25)])
        counters, _gauges, histograms, series = merged
        assert counters == (("ops", (("op", "read"),), 5),)
        assert histograms == (("lat", (("op", "read"),), (0.5, 0.25)),)
        assert series[0][0] == 1.0 and series[0][1] == (("ops", (("op", "read"),), 5),)
        assert canonical_metrics_bytes(merged) == canonical_metrics_bytes(merged)


class TestExport:
    def _state(self):
        registry = MetricsRegistry()
        registry.inc("requests_total", 7, op="read")
        registry.gauge("inflight").add(2)
        registry.observe("latency_seconds", 0.25, op="read")
        registry.observe("latency_seconds", 0.75, op="read")
        registry.sample(1.0)
        return registry.state()

    def test_prometheus_text(self):
        text = prometheus_text(self._state())
        assert '# TYPE requests_total counter' in text
        assert 'requests_total{op="read"} 7' in text
        assert 'inflight 2' in text.replace(".0", "")
        assert 'latency_seconds_count{op="read"} 2' in text
        assert 'latency_seconds_sum{op="read"} 1' in text.replace(".0", "")

    def test_json_artifact_and_write(self, tmp_path):
        artifact = json_artifact(self._state(), trace_rows=(), meta={"seed": 13})
        assert artifact["meta"]["seed"] == 13
        prom_path, json_path = write_artifacts(tmp_path, self._state())
        assert prom_path.read_text().startswith("# TYPE")
        loaded = json.loads(json_path.read_text())
        assert set(loaded) == {"meta", "metrics", "trace"}


def _request(tracer, name, parts, level="origin"):
    root = tracer.begin(name)
    tracer.end(root)
    total = 0.0
    for stage, cost in parts:
        tracer.attach(root, stage, cost=cost)
        total += cost
    root.cost = total
    root.attrs["level"] = level
    return root


class TestAnalyze:
    def _spans(self):
        tracer = TraceRecorder(FakeClock())
        _request(tracer, "sdk.read", [("net.origin", 0.15), ("queue.origin", 0.05)])
        _request(tracer, "sdk.read", [("net.cdn", 0.01)], level="cdn")
        _request(tracer, "sdk.query", [("net.origin", 0.3), ("gray.slow", 0.9)])
        return tracer.spans()

    def test_roots_and_attribution(self):
        spans = self._spans()
        roots = request_roots(spans)
        assert len(roots) == 3
        summary = latency_attribution(spans)
        assert summary["requests"] == 3
        assert summary["min_coverage"] == pytest.approx(1.0)
        assert summary["stages"][0][0] == "gray.slow"

    def test_coverage_with_negative_compensation(self):
        tracer = TraceRecorder(FakeClock())
        root = _request(
            tracer, "sdk.read", [("net.origin", 0.2), ("resilience.fast_fail", -0.2)]
        )
        _by_id, children = index_spans(tracer.spans())
        # Zero total latency: trivially fully covered.
        assert root.cost == 0.0
        assert coverage(root, children) == 1.0

    def test_critical_path_and_percentiles(self):
        spans = self._spans()
        _by_id, children = index_spans(spans)
        roots = request_roots(spans)
        p99 = percentile_root(roots, 0.99)
        assert p99.name == "sdk.query"
        top = critical_path(p99, children, k=1)
        assert top == [("gray.slow", 0.9)]
        assert percentile_root([], 0.5) is None
        with pytest.raises(ValueError):
            percentile_root(roots, 1.5)

    def test_renderers(self):
        spans = self._spans()
        _by_id, children = index_spans(spans)
        roots = request_roots(spans)
        waterfall = render_waterfall(roots[2], children)
        assert "gray.slow" in waterfall and "#" in waterfall
        stacks = folded_stacks(spans)
        assert any(line.startswith("sdk.query;gray.slow ") for line in stacks)
        report = render_report(spans)
        assert "latency attribution: 3 sampled requests" in report
        assert "top stages at p99" in report

    def test_analyze_accepts_tuple_rows(self):
        rows = [span.to_tuple() for span in self._spans()]
        assert latency_attribution(rows)["requests"] == 3
