"""Tests for the server configuration, active list and representation model."""

from __future__ import annotations

import pytest

from repro.core import ActiveList, QuaestorConfig, ResultRepresentation, choose_representation
from repro.db.query import Query
from repro.errors import ConfigurationError


class TestQuaestorConfig:
    def test_defaults_are_valid(self):
        config = QuaestorConfig()
        assert config.cache_records and config.cache_queries
        assert config.cdn_ttl_factor >= 1.0

    def test_uncached_profile(self):
        config = QuaestorConfig.uncached()
        assert not config.cache_records
        assert not config.cache_queries

    def test_records_only_profile(self):
        config = QuaestorConfig.records_only()
        assert config.cache_records
        assert not config.cache_queries

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QuaestorConfig(ebf_bits=0)
        with pytest.raises(ConfigurationError):
            QuaestorConfig(ttl_quantile=1.5)
        with pytest.raises(ConfigurationError):
            QuaestorConfig(ewma_alpha=1.0)
        with pytest.raises(ConfigurationError):
            QuaestorConfig(cdn_ttl_factor=0.5)
        with pytest.raises(ConfigurationError):
            QuaestorConfig(assumed_record_hit_rate=2.0)


class TestActiveList:
    def test_record_read_creates_entry(self):
        active = ActiveList()
        query = Query("posts", {"a": 1})
        entry = active.record_read(query, timestamp=10.0, ttl=30.0, result_size=5,
                                   representation=ResultRepresentation.OBJECT_LIST)
        assert entry.query_key == query.cache_key
        assert active.contains(query.cache_key)
        assert len(active) == 1

    def test_repeated_reads_update_entry(self):
        active = ActiveList()
        query = Query("posts", {"a": 1})
        active.record_read(query, 10.0, 30.0, 5, ResultRepresentation.OBJECT_LIST)
        entry = active.record_read(query, 20.0, 60.0, 7, ResultRepresentation.ID_LIST)
        assert entry.reads == 2
        assert entry.last_read_time == 20.0
        assert entry.current_ttl == 60.0
        assert entry.representation is ResultRepresentation.ID_LIST
        assert len(active) == 1

    def test_actual_ttl_is_time_since_last_read(self):
        active = ActiveList()
        query = Query("posts", {"a": 1})
        active.record_read(query, 10.0, 30.0, 5, ResultRepresentation.OBJECT_LIST)
        actual = active.record_invalidation(query.cache_key, timestamp=18.0)
        assert actual == pytest.approx(8.0)
        assert active.get(query.cache_key).invalidations == 1

    def test_invalidation_of_unknown_query_returns_none(self):
        assert ActiveList().record_invalidation("query:unknown", 5.0) is None

    def test_remove(self):
        active = ActiveList()
        query = Query("posts", {"a": 1})
        active.record_read(query, 10.0, 30.0, 5, ResultRepresentation.OBJECT_LIST)
        assert active.remove(query.cache_key) is True
        assert active.remove(query.cache_key) is False
        assert not active.contains(query.cache_key)


class TestRepresentationChoice:
    def test_small_results_prefer_object_lists(self):
        assert choose_representation(10, 0.6, 50) is ResultRepresentation.OBJECT_LIST

    def test_results_above_cap_use_id_lists(self):
        assert choose_representation(500, 0.6, 50) is ResultRepresentation.ID_LIST

    def test_high_record_hit_rate_can_justify_id_lists(self):
        # With all records already cached, the id-list costs almost no extra
        # round-trips but saves invalidations.
        assert choose_representation(1, 1.0, 50, change_fraction=0.9) is ResultRepresentation.ID_LIST

    def test_validation(self):
        with pytest.raises(ValueError):
            choose_representation(-1, 0.5, 50)
        with pytest.raises(ValueError):
            choose_representation(1, 1.5, 50)
        with pytest.raises(ValueError):
            choose_representation(1, 0.5, 50, change_fraction=2.0)
