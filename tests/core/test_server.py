"""Tests for the Quaestor server middleware."""

from __future__ import annotations

import pytest

from repro.caching import InvalidationCache
from repro.core import QuaestorConfig, QuaestorServer, ResultRepresentation
from repro.db import Query
from repro.db.query import record_key
from repro.invalidb import InvaliDBCluster
from repro.rest.messages import StatusCode


@pytest.fixture
def server(database, posts):
    return QuaestorServer(
        database, config=QuaestorConfig(), invalidb=InvaliDBCluster(matching_nodes=2)
    )


@pytest.fixture
def cdn(server, clock):
    cache = InvalidationCache("cdn", clock)
    server.register_purge_target(cache)
    return cache


class TestReadPath:
    def test_read_returns_document_with_ttl_and_etag(self, server):
        response = server.handle_read("posts", "p0")
        assert response.status == StatusCode.OK
        assert response.body["document"]["_id"] == "p0"
        assert response.body["version"] == 1
        assert response.etag is not None
        assert response.is_cacheable
        assert response.ttl_for(shared=False) > 0

    def test_read_missing_document(self, server):
        response = server.handle_read("posts", "nonexistent")
        assert response.status == StatusCode.NOT_FOUND
        assert not response.is_cacheable

    def test_read_reports_to_ebf(self, server, clock):
        server.handle_read("posts", "p0")
        key = record_key("posts", "p0")
        assert server.ebf.cacheable_until(key) is not None

    def test_uncached_config_returns_uncacheable(self, database, posts):
        server = QuaestorServer(database, config=QuaestorConfig.uncached())
        response = server.handle_read("posts", "p0")
        assert not response.is_cacheable
        assert response.body["document"]["_id"] == "p0"

    def test_cdn_gets_longer_ttl_than_clients(self, server):
        response = server.handle_read("posts", "p0")
        assert response.ttl_for(shared=True) > response.ttl_for(shared=False)


class TestQueryPath:
    def test_query_returns_object_list(self, server, example_query):
        response = server.handle_query(example_query)
        body = response.body
        assert body["representation"] == ResultRepresentation.OBJECT_LIST.value
        assert len(body["documents"]) == 10
        assert set(body["record_versions"]) == set(body["ids"])
        assert response.is_cacheable

    def test_query_registers_in_invalidb_and_active_list(self, server, example_query):
        server.handle_query(example_query)
        assert server.invalidb.is_registered(example_query.cache_key)
        assert server.active_list.contains(example_query.cache_key)

    def test_query_registration_is_idempotent(self, server, example_query):
        server.handle_query(example_query)
        server.handle_query(example_query)
        assert server.counters.get("queries_registered") == 1

    def test_query_reports_members_to_ebf(self, server, example_query):
        server.handle_query(example_query)
        assert server.ebf.cacheable_until(record_key("posts", "p0")) is not None

    def test_queries_uncacheable_when_disabled(self, database, posts, example_query):
        server = QuaestorServer(database, config=QuaestorConfig(cache_queries=False))
        response = server.handle_query(example_query)
        assert not response.is_cacheable
        assert len(response.body["documents"]) == 10

    def test_capacity_rejection_serves_uncacheable(self, database, posts, example_query):
        config = QuaestorConfig(max_active_queries=0)
        server = QuaestorServer(database, config=config)
        response = server.handle_query(example_query)
        assert not response.is_cacheable
        assert server.counters.get("queries_uncacheable") == 1

    def test_stateful_query_registered_with_full_result(self, server):
        query = Query("posts", {"tags": "example"}, sort=[("views", -1)], limit=2)
        response = server.handle_query(query)
        assert len(response.body["documents"]) == 2
        assert server.invalidb.is_registered(query.cache_key)


class TestWritePathAndInvalidation:
    def test_update_invalidates_cached_query(self, server, cdn, example_query, clock):
        query_response = server.handle_query(example_query)
        cdn.store(example_query.cache_key, query_response)
        # p1 (tagged 'other') gains the 'example' tag -> result set changes.
        server.handle_update("posts", "p1", {"$set": {"tags": ["example"]}})
        assert server.ebf.is_stale(example_query.cache_key)
        assert example_query.cache_key not in cdn
        assert server.counters.get("query_invalidations") >= 1

    def test_update_invalidates_record_key(self, server, cdn, clock):
        read_response = server.handle_read("posts", "p0")
        cdn.store(record_key("posts", "p0"), read_response)
        server.handle_update("posts", "p0", {"$inc": {"views": 1}})
        assert server.ebf.is_stale(record_key("posts", "p0"))
        assert record_key("posts", "p0") not in cdn

    def test_change_event_does_not_invalidate_id_list(self, database, posts, clock):
        """Pure change notifications are ignored for id-list cached queries."""
        config = QuaestorConfig(object_list_max_size=0)  # force id-lists
        server = QuaestorServer(database, config=config)
        query = Query("posts", {"tags": "example"})
        server.handle_query(query)
        # A views increment keeps the matching status: change event only.
        server.handle_update("posts", "p0", {"$inc": {"views": 1}})
        assert not server.ebf.is_stale(query.cache_key)
        assert server.counters.get("notifications_ignored_id_list") >= 1

    def test_irrelevant_write_does_not_invalidate(self, server, example_query):
        server.handle_query(example_query)
        # p1 is not in the result; changing its views does not affect the query.
        server.handle_update("posts", "p1", {"$inc": {"views": 1}})
        assert not server.ebf.is_stale(example_query.cache_key)

    def test_insert_matching_document_invalidates(self, server, example_query):
        server.handle_query(example_query)
        server.handle_insert("posts", {"_id": "p-new", "tags": ["example"], "views": 0})
        assert server.ebf.is_stale(example_query.cache_key)

    def test_delete_of_member_invalidates(self, server, example_query):
        server.handle_query(example_query)
        server.handle_delete("posts", "p0")
        assert server.ebf.is_stale(example_query.cache_key)

    def test_write_responses_are_uncacheable(self, server):
        insert = server.handle_insert("posts", {"_id": "x1", "tags": []})
        update = server.handle_update("posts", "x1", {"$set": {"views": 1}})
        delete = server.handle_delete("posts", "x1")
        assert not insert.is_cacheable
        assert not update.is_cacheable
        assert not delete.is_cacheable
        assert insert.status == StatusCode.CREATED

    def test_write_to_missing_document(self, server):
        assert server.handle_update("posts", "ghost", {"$set": {"a": 1}}).status == StatusCode.NOT_FOUND
        assert server.handle_delete("posts", "ghost").status == StatusCode.NOT_FOUND

    def test_invalidation_hooks_invoked(self, server, example_query):
        invalidated = []
        server.add_invalidation_hook(lambda key, timestamp: invalidated.append(key))
        server.handle_query(example_query)
        server.handle_update("posts", "p0", {"$set": {"tags": ["other"]}})
        assert example_query.cache_key in invalidated
        assert record_key("posts", "p0") in invalidated

    def test_ttl_estimator_receives_invalidation_feedback(self, server, example_query, clock):
        server.handle_query(example_query)
        clock.advance(5.0)
        server.handle_update("posts", "p0", {"$set": {"tags": ["other"]}})
        refined = server.ttl_estimator.current_query_estimate(example_query.cache_key)
        assert refined is not None


class TestBloomFilterEndpoint:
    def test_flat_filter_reflects_staleness(self, server, example_query):
        server.handle_query(example_query)
        empty_filter = server.get_bloom_filter()
        assert not empty_filter.contains(example_query.cache_key)
        server.handle_update("posts", "p0", {"$set": {"tags": ["other"]}})
        stale_filter = server.get_bloom_filter()
        assert stale_filter.contains(example_query.cache_key)

    def test_statistics_snapshot(self, server, example_query):
        server.handle_query(example_query)
        server.handle_read("posts", "p0")
        stats = server.statistics()
        assert stats["queries"] == 1
        assert stats["reads"] == 1
        assert stats["active_queries"] == 1

    def test_execute_dispatches_workload_operations(self, server, example_query):
        from repro.workloads import Operation, OperationType

        read = Operation(OperationType.READ, "posts", document_id="p0")
        query = Operation(OperationType.QUERY, "posts", query=example_query)
        update = Operation(
            OperationType.UPDATE, "posts", document_id="p0", payload={"$inc": {"views": 1}}
        )
        assert server.execute(read).status == StatusCode.OK
        assert server.execute(query).status == StatusCode.OK
        assert server.execute(update).status == StatusCode.OK
