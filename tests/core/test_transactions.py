"""Tests for optimistic (BOCC-style) transactions."""

from __future__ import annotations

import pytest

from repro.core import QuaestorConfig, QuaestorServer
from repro.db import Query
from repro.errors import TransactionAbortedError
from repro.invalidb import InvaliDBCluster


@pytest.fixture
def server(database, posts):
    return QuaestorServer(database, config=QuaestorConfig(), invalidb=InvaliDBCluster())


class TestCommitPath:
    def test_read_then_commit_applies_buffered_writes(self, server, database):
        txn = server.begin_transaction()
        post = txn.read("posts", "p0")
        assert post["_id"] == "p0"
        txn.update("posts", "p0", {"$inc": {"views": 10}})
        txn.insert("posts", {"_id": "p-txn", "tags": ["example"]})
        txn.commit()
        assert txn.is_committed
        assert database.get("posts", "p0")["views"] == 10
        assert database.get("posts", "p-txn")["tags"] == ["example"]

    def test_writes_not_applied_before_commit(self, server, database):
        txn = server.begin_transaction()
        txn.update("posts", "p0", {"$inc": {"views": 10}})
        assert database.get("posts", "p0")["views"] == 0

    def test_delete_in_transaction(self, server, database):
        txn = server.begin_transaction()
        txn.read("posts", "p5")
        txn.delete("posts", "p5")
        txn.commit()
        assert database.collection("posts").get_or_none("p5") is None

    def test_query_read_set_commit_when_unchanged(self, server):
        txn = server.begin_transaction()
        results = txn.query(Query("posts", {"tags": "example"}))
        assert len(results) == 10
        txn.update("posts", "p1", {"$inc": {"views": 1}})  # p1 is not in the result
        txn.commit()
        assert txn.is_committed


class TestAbortPath:
    def test_concurrent_record_write_aborts(self, server):
        txn = server.begin_transaction()
        txn.read("posts", "p0")
        txn.update("posts", "p0", {"$set": {"views": 99}})
        # A conflicting write outside the transaction bumps the version.
        server.handle_update("posts", "p0", {"$inc": {"views": 1}})
        with pytest.raises(TransactionAbortedError):
            txn.commit()
        assert txn.is_aborted

    def test_aborted_transaction_does_not_apply_writes(self, server, database):
        txn = server.begin_transaction()
        txn.read("posts", "p0")
        txn.update("posts", "p0", {"$set": {"views": 99}})
        server.handle_update("posts", "p0", {"$inc": {"views": 1}})
        with pytest.raises(TransactionAbortedError):
            txn.commit()
        assert database.get("posts", "p0")["views"] == 1  # only the external write

    def test_concurrent_change_to_query_result_aborts(self, server):
        txn = server.begin_transaction()
        txn.query(Query("posts", {"tags": "example"}))
        # An external write changes the query result before commit.
        server.handle_update("posts", "p1", {"$set": {"tags": ["example"]}})
        txn.update("posts", "p3", {"$inc": {"views": 1}})
        with pytest.raises(TransactionAbortedError):
            txn.commit()

    def test_read_of_missing_document_validates_against_absence(self, server):
        txn = server.begin_transaction()
        assert txn.read("posts", "ghost") is None
        # Someone creates the document before commit: validation must fail.
        server.handle_insert("posts", {"_id": "ghost", "tags": []})
        txn.update("posts", "p0", {"$inc": {"views": 1}})
        with pytest.raises(TransactionAbortedError):
            txn.commit()

    def test_explicit_abort(self, server, database):
        txn = server.begin_transaction()
        txn.update("posts", "p0", {"$set": {"views": 50}})
        txn.abort()
        assert txn.is_aborted
        assert database.get("posts", "p0")["views"] == 0

    def test_operations_after_completion_rejected(self, server):
        txn = server.begin_transaction()
        txn.commit()
        with pytest.raises(TransactionAbortedError):
            txn.read("posts", "p0")
        with pytest.raises(TransactionAbortedError):
            txn.commit()

    def test_retry_after_abort_succeeds(self, server, database):
        txn = server.begin_transaction()
        txn.read("posts", "p0")
        txn.update("posts", "p0", {"$set": {"title": "txn"}})
        server.handle_update("posts", "p0", {"$inc": {"views": 1}})
        with pytest.raises(TransactionAbortedError):
            txn.commit()
        retry = server.begin_transaction()
        retry.read("posts", "p0")
        retry.update("posts", "p0", {"$set": {"title": "txn"}})
        retry.commit()
        assert database.get("posts", "p0")["title"] == "txn"
