"""Read-pipeline tests: golden equivalence and prepared-read protocol.

``golden_read_path.json`` was captured by running the deterministic scenario
below against the pre-pipeline ``handle_query`` / ``handle_read``
implementations (the hand-inlined bookkeeping sequences).  The equivalence
test replays the scenario through the staged :class:`ReadPipeline` and
asserts the serialized responses are byte-identical, so the refactor is
provably behaviour-preserving on the single-server path.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.clock import VirtualClock
from repro.core import QuaestorConfig, QuaestorServer, ResultRepresentation
from repro.core.read_path import PreparedShardRead, ReadContext, ReadPipeline
from repro.db import Database, Query
from repro.invalidb import InvaliDBCluster
from repro.ttl import TTLEstimatorSpec

GOLDEN_PATH = Path(__file__).parent / "golden_read_path.json"


def build_server(clock=None, config=None):
    clock = clock if clock is not None else VirtualClock()
    database = Database(clock=clock)
    server = QuaestorServer(
        database, config=config, invalidb=InvaliDBCluster(matching_nodes=2)
    )
    return server, clock


def serialize(response):
    return {
        "status": int(response.status),
        "etag": response.etag,
        "max_age": response.cache_control.max_age,
        "s_maxage": response.cache_control.s_maxage,
        "no_store": response.cache_control.no_store,
        "body": response.body,
    }


class TestGoldenEquivalence:
    def test_single_server_responses_are_byte_identical_to_pre_pipeline(self):
        # The golden file was captured under the pre-bake-off default
        # estimator; the legacy spec reproduces it byte-for-byte.
        server, clock = build_server(
            config=QuaestorConfig(ttl_estimator=TTLEstimatorSpec.legacy())
        )
        for index in range(40):
            server.handle_insert(
                "posts",
                {
                    "_id": f"doc-{index:03d}",
                    "category": index % 5,
                    "views": (index * 37) % 101,
                },
            )
            clock.advance(0.25)

        responses = []
        for query in [
            Query("posts", {"category": 2}),
            Query("posts", {"views": {"$gt": 50}}, sort=(("views", -1), ("_id", 1)), limit=5),
            Query("posts", {}, limit=3, offset=2),
            Query("posts", {"category": 99}),
        ]:
            clock.advance(1.0)
            responses.append(serialize(server.handle_query(query)))
        clock.advance(1.0)
        responses.append(serialize(server.handle_read("posts", "doc-007")))

        golden = json.loads(GOLDEN_PATH.read_text())
        assert json.dumps(responses, sort_keys=True) == json.dumps(golden, sort_keys=True)


class TestSharedPipeline:
    def test_entry_points_share_one_pipeline_instance(self):
        server, _ = build_server()
        assert isinstance(server.pipeline, ReadPipeline)
        assert server.pipeline.server is server

    def test_shard_query_matches_single_call_bookkeeping(self):
        """prepare+commit leaves the same state the one-shot entry point does."""
        clock = VirtualClock()
        one_shot, _ = build_server(clock=clock)
        two_phase, _ = build_server(clock=clock)
        for server in (one_shot, two_phase):
            for index in range(10):
                server.handle_insert("posts", {"_id": f"p{index}", "category": index % 2})

        query = Query("posts", {"category": 1})
        direct = one_shot.handle_shard_query(query)
        prepared = two_phase.prepare_shard_query(query)
        assert prepared.admitted
        committed = prepared.commit()

        assert serialize(direct) == serialize(committed)
        for server in (one_shot, two_phase):
            assert server.invalidb.is_registered(query.cache_key)
            assert server.capacity.is_admitted(query.cache_key)
            assert server.active_list.get(query.cache_key) is not None
            entry = server.active_list.get(query.cache_key)
            assert entry.representation is ResultRepresentation.OBJECT_LIST


class TestPreparedShardRead:
    def test_abort_leaves_no_bookkeeping(self):
        server, _ = build_server()
        for index in range(6):
            server.handle_insert("posts", {"_id": f"p{index}", "category": 0})
        query = Query("posts", {"category": 0})

        prepared = server.prepare_shard_query(query)
        assert prepared.admitted
        response = prepared.abort()

        assert not response.is_cacheable
        assert response.body["documents"]
        assert not server.invalidb.is_registered(query.cache_key)
        assert not server.capacity.is_admitted(query.cache_key)
        assert server.active_list.get(query.cache_key) is None
        assert server.counters.get("shard_queries_aborted") == 1

    def test_prepared_read_is_single_use(self):
        server, _ = build_server()
        server.handle_insert("posts", {"_id": "p0", "category": 0})
        prepared = server.prepare_shard_query(Query("posts", {"category": 0}))
        prepared.commit()
        with pytest.raises(RuntimeError):
            prepared.commit()
        with pytest.raises(RuntimeError):
            prepared.abort()

    def test_rejected_prepared_read_cannot_commit(self):
        server, _ = build_server(config=QuaestorConfig(max_active_queries=1))
        server.handle_insert("posts", {"_id": "p0", "category": 0})
        # Saturate the single slot with a high-scoring query.
        server.capacity.admit("hot")
        for _ in range(50):
            server.capacity.record_read("hot", result_size=0)

        prepared = server.prepare_shard_query(Query("posts", {"category": 0}))
        assert not prepared.admitted
        with pytest.raises(ValueError):
            prepared.commit()
        # The failed commit leaves the read unresolved: it is still abortable.
        response = prepared.abort()
        assert not response.is_cacheable
        assert response.body["documents"]

    def test_stale_ticket_commit_degrades_to_uncacheable(self):
        """An interleaved admission between probe and commit must not overfill."""
        server, _ = build_server(config=QuaestorConfig(max_active_queries=1))
        for index in range(4):
            server.handle_insert("posts", {"_id": f"p{index}", "category": index % 2})
        scatter = Query("posts", {"category": 0})
        prepared = server.prepare_shard_query(scatter)
        assert prepared.admitted

        # A single-server query takes the last slot while the ticket is open.
        interleaved = Query("posts", {"category": 1})
        assert server.handle_query(interleaved).is_cacheable

        response = prepared.commit()
        assert not response.is_cacheable
        assert response.body["documents"]
        assert server.capacity.admitted_queries() == [interleaved.cache_key]
        assert not server.invalidb.is_registered(scatter.cache_key)
        assert server.active_list.get(scatter.cache_key) is None

    def test_caching_disabled_prepared_read_aborts_cleanly(self):
        server, _ = build_server(config=QuaestorConfig(cache_queries=False))
        server.handle_insert("posts", {"_id": "p0", "category": 0})
        prepared = server.prepare_shard_query(Query("posts", {"category": 0}))
        assert not prepared.admitted
        response = prepared.abort()
        assert not response.is_cacheable
        # No probe happened, so nothing is counted as an abort.
        assert server.capacity.aborts == 0
        assert server.counters.get("shard_queries_aborted") == 0


class TestAdmissionStatistics:
    def test_statistics_expose_admission_outcome(self):
        server, _ = build_server()
        server.handle_insert("posts", {"_id": "p0", "category": 0})
        server.handle_query(Query("posts", {"category": 0}))
        prepared = server.prepare_shard_query(Query("posts", {"category": 1}))
        prepared.abort()

        snapshot = server.statistics()
        assert snapshot["admission_probes"] == 2
        assert snapshot["admission_commits"] == 1
        assert snapshot["admission_aborts"] == 1
        assert snapshot["admission_rejections"] == 0
