"""Unit coverage for the offline guarantee checkers (hand-built histories)."""

from __future__ import annotations

from typing import List, Optional

from repro.client.sdk import DEGRADED_LEVEL, ERROR_LEVEL
from repro.verify.checkers import (
    check_causal_frontier,
    check_delta_atomicity,
    check_monotonic_reads,
    check_read_your_writes,
    run_all,
)
from repro.verify.history import KIND_INSTALL, KIND_OPERATION, HistoryEvent

_SEQ = [0]


def install(key: str, token: str, at: float) -> HistoryEvent:
    seq = _SEQ[0]
    _SEQ[0] += 1
    return HistoryEvent(
        seq=seq, kind=KIND_INSTALL, session="", op="install", key=key,
        invoked=at, completed=at, etag=token, version=None, level="origin",
        frontier=0.0, degraded=False, hedged=False, retried=False,
        fast_failed=False,
    )


def op(
    session: str,
    kind_op: str,
    key: str,
    at: float,
    *,
    etag: Optional[str] = None,
    version: Optional[int] = None,
    level: str = "cdn",
    frontier: float = 0.0,
    degraded: bool = False,
) -> HistoryEvent:
    seq = _SEQ[0]
    _SEQ[0] += 1
    return HistoryEvent(
        seq=seq, kind=KIND_OPERATION, session=session, op=kind_op, key=key,
        invoked=at, completed=at + 0.01, etag=etag, version=version,
        level=level, frontier=frontier, degraded=degraded, hedged=False,
        retried=False, fast_failed=False,
    )


class TestDeltaAtomicity:
    def test_fresh_read_passes(self):
        history = [
            install("k", "v1", 0.0),
            install("k", "v2", 5.0),
            op("c0", "read", "k", 6.0, etag="v2"),
        ]
        assert check_delta_atomicity(history, delta_budget=1.0).ok

    def test_read_within_budget_passes(self):
        history = [
            install("k", "v1", 0.0),
            install("k", "v2", 5.0),
            op("c0", "read", "k", 5.5, etag="v1"),  # 0.5s past supersession
        ]
        assert check_delta_atomicity(history, delta_budget=1.0).ok

    def test_read_past_budget_violates(self):
        history = [
            install("k", "v1", 0.0),
            install("k", "v2", 5.0),
            op("c0", "read", "k", 9.0, etag="v1"),  # 4s past supersession
        ]
        report = check_delta_atomicity(history, delta_budget=1.0)
        assert not report.ok
        assert len(report.violations) == 1
        assert report.violations[0].key == "k"

    def test_aba_reappearance_scores_against_latest_occurrence(self):
        """A token re-installed later must be judged by its newest life."""
        history = [
            install("k", "A", 0.0),
            install("k", "B", 5.0),
            install("k", "A", 10.0),  # content reverted: A is current again
            op("c0", "read", "k", 60.0, etag="A"),
        ]
        assert check_delta_atomicity(history, delta_budget=1.0).ok
        # The superseded middle token still violates.
        stale = history[:3] + [op("c0", "read", "k", 60.0, etag="B")]
        assert not check_delta_atomicity(stale, delta_budget=1.0).ok

    def test_unknown_token_is_fresh(self):
        history = [op("c0", "read", "k", 1.0, etag="never-installed")]
        assert check_delta_atomicity(history, delta_budget=1.0).ok

    def test_degraded_reads_use_the_degraded_budget(self):
        history = [
            install("k", "v1", 0.0),
            install("k", "v2", 5.0),
            op("c0", "read", "k", 9.0, etag="v1",
               level=DEGRADED_LEVEL, degraded=True),
        ]
        assert check_delta_atomicity(history, delta_budget=1.0, degraded_budget=10.0).ok
        assert not check_delta_atomicity(history, delta_budget=1.0, degraded_budget=2.0).ok

    def test_error_responses_are_not_checked(self):
        history = [
            install("k", "v1", 0.0),
            install("k", "v2", 5.0),
            op("c0", "read", "k", 90.0, etag="v1", level=ERROR_LEVEL),
        ]
        report = check_delta_atomicity(history, delta_budget=1.0)
        assert report.ok
        assert report.checked == 0

    def test_zone_score_reported_in_stats(self):
        history = [
            install("k", "v1", 0.0),
            install("k", "v2", 5.0),
            op("c0", "read", "k", 5.5, etag="v1"),
        ]
        report = check_delta_atomicity(history, delta_budget=1.0)
        assert report.stats["max_zone_score"] == 0.5


class TestReadYourWrites:
    def test_read_back_of_own_write_passes(self):
        history = [
            op("c0", "update", "k", 1.0, version=3, level="origin"),
            op("c0", "read", "k", 2.0, version=3),
        ]
        assert check_read_your_writes(history).ok

    def test_newer_version_passes(self):
        history = [
            op("c0", "update", "k", 1.0, version=3, level="origin"),
            op("c0", "read", "k", 2.0, version=5),
        ]
        assert check_read_your_writes(history).ok

    def test_older_version_violates(self):
        history = [
            op("c0", "update", "k", 1.0, version=3, level="origin"),
            op("c0", "read", "k", 2.0, version=2),
        ]
        report = check_read_your_writes(history)
        assert not report.ok
        assert report.violations[0].session == "c0"

    def test_other_sessions_have_no_obligation(self):
        history = [
            op("c0", "update", "k", 1.0, version=3, level="origin"),
            op("c1", "read", "k", 2.0, version=1),
        ]
        assert check_read_your_writes(history).ok

    def test_delete_clears_the_obligation(self):
        history = [
            op("c0", "update", "k", 1.0, version=3, level="origin"),
            op("c0", "delete", "k", 2.0, version=-1, level="origin"),
            op("c0", "read", "k", 3.0, version=1),
        ]
        assert check_read_your_writes(history).ok

    def test_degraded_and_versionless_reads_never_violate(self):
        history = [
            op("c0", "update", "k", 1.0, version=3, level="origin"),
            # Degraded serves are Δ-checked, not session-checked: skipped.
            op("c0", "read", "k", 2.0, version=1,
               level=DEGRADED_LEVEL, degraded=True),
            # A miss is locally undecidable (could be a remote delete):
            # counted as checked but never a violation.
            op("c0", "read", "k", 3.0, version=None),
        ]
        report = check_read_your_writes(history)
        assert report.ok
        assert report.checked == 1


class TestMonotonicReads:
    def test_non_decreasing_versions_pass(self):
        history = [
            op("c0", "read", "k", 1.0, version=2),
            op("c0", "read", "k", 2.0, version=2),
            op("c0", "read", "k", 3.0, version=4),
        ]
        assert check_monotonic_reads(history).ok

    def test_regression_violates(self):
        history = [
            op("c0", "read", "k", 1.0, version=4),
            op("c0", "read", "k", 2.0, version=3),
        ]
        assert not check_monotonic_reads(history).ok

    def test_sessions_and_keys_are_independent(self):
        history = [
            op("c0", "read", "a", 1.0, version=4),
            op("c1", "read", "a", 2.0, version=1),
            op("c0", "read", "b", 3.0, version=1),
        ]
        assert check_monotonic_reads(history).ok

    def test_degraded_reads_are_skipped(self):
        history = [
            op("c0", "read", "k", 1.0, version=4),
            op("c0", "read", "k", 2.0, version=1,
               level=DEGRADED_LEVEL, degraded=True),
        ]
        assert check_monotonic_reads(history).ok


class TestCausalFrontier:
    def test_monotone_frontier_passes(self):
        history = [
            op("c0", "read", "k", 1.0, frontier=1.0),
            op("c0", "update", "k", 2.0, version=2, frontier=2.0, level="origin"),
            op("c0", "read", "k", 3.0, frontier=2.0),
        ]
        assert check_causal_frontier(history).ok

    def test_rollback_violates(self):
        history = [
            op("c0", "read", "k", 1.0, frontier=5.0),
            op("c0", "read", "k", 2.0, frontier=3.0),
        ]
        assert not check_causal_frontier(history).ok

    def test_degraded_serve_must_not_advance_the_frontier(self):
        history = [
            op("c0", "read", "k", 1.0, frontier=1.0),
            op("c0", "read", "k", 2.0, frontier=2.0,
               level=DEGRADED_LEVEL, degraded=True),
        ]
        report = check_causal_frontier(history)
        assert not report.ok
        assert "degraded" in report.violations[0].description

    def test_degraded_serve_holding_the_frontier_passes(self):
        history = [
            op("c0", "read", "k", 1.0, frontier=2.0),
            op("c0", "read", "k", 2.0, frontier=2.0,
               level=DEGRADED_LEVEL, degraded=True),
        ]
        assert check_causal_frontier(history).ok


class TestRunAll:
    def test_stable_report_order(self):
        reports = run_all([], delta_budget=1.0)
        assert [r.checker for r in reports] == [
            "delta-atomicity",
            "read-your-writes",
            "monotonic-reads",
            "causal-frontier",
        ]

    def test_empty_history_is_trivially_ok(self):
        assert all(report.ok for report in run_all([], delta_budget=1.0))
