"""Scenario matrix: fast representative audit plus the full chaos matrix.

The full 16-cell matrix is marked ``slow_chaos`` and excluded from the
default run (see pytest.ini); CI runs it as a separate step via
``make verify-consistency`` / ``pytest -m slow_chaos``.
"""

from __future__ import annotations

import pytest

from repro.core.consistency import ConsistencyLevel
from repro.errors import ConfigurationError
from repro.verify.scenarios import (
    FAULTS,
    ScenarioSpec,
    budgets_for,
    run_scenario,
    scenario_matrix,
    smoke_matrix,
)


class TestMatrixShape:
    def test_full_matrix_is_the_cross_product(self):
        matrix = scenario_matrix()
        assert len(matrix) == len(FAULTS) * 2 * 2
        cells = {(s.fault, s.replication_factor, s.consistency) for s in matrix}
        assert len(cells) == len(matrix)

    def test_seeds_are_distinct_and_stable(self):
        seeds = [spec.seed for spec in scenario_matrix()]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [spec.seed for spec in scenario_matrix()]

    def test_smoke_matrix_covers_every_fault_archetype(self):
        smoke = smoke_matrix()
        assert sorted(spec.fault for spec in smoke) == sorted(FAULTS)
        assert all(spec in scenario_matrix() for spec in smoke)

    def test_unknown_fault_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                fault="meteor", replication_factor=1,
                consistency=ConsistencyLevel.CAUSAL, seed=1,
            )

    def test_gray_faults_enable_the_resilience_layer(self):
        by_fault = {spec.fault: spec for spec in smoke_matrix()}
        assert by_fault["brownout"].build_config().resilience is not None
        assert by_fault["flaky"].build_config().resilience is not None
        assert by_fault["none"].build_config().resilience is None

    def test_crash_budget_covers_the_failover_window(self):
        by_fault = {spec.fault: spec for spec in smoke_matrix()}
        calm, _ = budgets_for(by_fault["none"], by_fault["none"].build_config())
        crash, _ = budgets_for(
            by_fault["rolling-crashes"], by_fault["rolling-crashes"].build_config()
        )
        assert crash > calm


class TestRepresentativeScenario:
    """One real cell end to end: the quick gate for the default test run."""

    @pytest.fixture(scope="class")
    def result(self):
        spec = smoke_matrix()[0]  # none/rf=3/delta-atomic
        return run_scenario(spec)

    def test_unmodified_system_audits_clean(self, result):
        assert result.checkers_ok, [
            (r.checker, r.violations) for r in result.reports if not r.ok
        ]

    def test_every_guarantee_audited_real_events(self, result):
        checked = {report.checker: report.checked for report in result.reports}
        assert all(count > 0 for count in checked.values()), checked

    def test_every_mutation_detected(self, result):
        missed = [o.name for o in result.mutations if not o.detected]
        assert not missed, missed


@pytest.mark.slow_chaos
class TestFullChaosMatrix:
    @pytest.mark.parametrize(
        "spec", scenario_matrix(), ids=lambda spec: spec.name
    )
    def test_cell_audits_clean_and_mutations_detected(self, spec):
        result = run_scenario(spec)
        assert result.checkers_ok, [
            (r.checker, r.violations) for r in result.reports if not r.ok
        ]
        assert result.mutations_ok, [
            o.name for o in result.mutations if not o.detected
        ]
