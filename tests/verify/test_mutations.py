"""Vacuity-proofing: every registered mutation must trip its checker."""

from __future__ import annotations

import pytest

from repro.simulation.simulator import SimulationConfig, Simulator
from repro.verify.mutations import MUTATIONS, run_mutation_self_test

EXPECTED_MUTATIONS = {
    "oversized_ttl": "delta-atomicity",
    "dropped_invalidation": "delta-atomicity",
    "frontier_rollback": "causal-frontier",
    "degraded_frontier_advance": "causal-frontier",
    "lost_acked_write": "read-your-writes",
    "monotonic_regression": "monotonic-reads",
}


@pytest.fixture(scope="module")
def recorded_history():
    config = SimulationConfig(
        seed=42,
        num_shards=2,
        replication_factor=3,
        num_clients=4,
        connections_per_client=2,
        duration=30.0,
        max_operations=400,
        matching_nodes=2,
        record_history=True,
    )
    simulator = Simulator(config)
    simulator.run()
    return simulator.history_events()


class TestRegistry:
    def test_every_guarantee_has_a_mutation(self):
        assert {m.name: m.expected_checker for m in MUTATIONS} == EXPECTED_MUTATIONS

    def test_mutations_do_not_modify_the_input(self, recorded_history):
        before = tuple(recorded_history)
        for mutation in MUTATIONS:
            mutation.apply(recorded_history)
        assert tuple(recorded_history) == before


class TestDetection:
    def test_all_mutations_detected_on_a_recorded_history(self, recorded_history):
        outcomes = run_mutation_self_test(
            recorded_history, delta_budget=2.5, degraded_budget=11.5
        )
        missed = [o.name for o in outcomes if not o.detected]
        assert not missed, f"mutations evaded their checker: {missed}"

    def test_mutations_fire_only_their_targeted_checker(self, recorded_history):
        """Each injected breach is a clean single-guarantee violation."""
        outcomes = run_mutation_self_test(
            recorded_history, delta_budget=2.5, degraded_budget=11.5
        )
        for outcome in outcomes:
            assert outcome.checkers_fired == (outcome.expected_checker,), outcome

    def test_all_mutations_detected_on_an_empty_history(self):
        """Fixture synthesis keeps the self-test meaningful with no traffic."""
        outcomes = run_mutation_self_test((), delta_budget=2.5, degraded_budget=11.5)
        assert all(outcome.detected for outcome in outcomes)
