"""History recording: determinism, no behavioral footprint, wire format."""

from __future__ import annotations

import pytest

from repro.simulation.simulator import SimulationConfig, Simulator
from repro.verify.history import (
    KIND_INSTALL,
    KIND_OPERATION,
    HistoryEvent,
    HistoryRecorder,
    canonical_bytes,
    events_from_tuples,
)


def _config(record_history: bool, seed: int = 42) -> SimulationConfig:
    return SimulationConfig(
        seed=seed,
        num_shards=2,
        replication_factor=3,
        num_clients=4,
        connections_per_client=2,
        duration=30.0,
        max_operations=400,
        matching_nodes=2,
        record_history=record_history,
    )


class TestRecorder:
    def test_install_dedupes_consecutive_identical_tokens(self):
        recorder = HistoryRecorder()
        recorder.record_install("k", "v1", 1.0)
        recorder.record_install("k", "v1", 2.0)  # same token again: dropped
        recorder.record_install("k", "v2", 3.0)
        recorder.record_install("k", "v1", 4.0)  # reappearance: kept (ABA)
        assert [(e.etag, e.invoked) for e in recorder.events()] == [
            ("v1", 1.0),
            ("v2", 3.0),
            ("v1", 4.0),
        ]

    def test_install_dedupe_is_per_key(self):
        recorder = HistoryRecorder()
        recorder.record_install("a", "v1", 1.0)
        recorder.record_install("b", "v1", 2.0)
        assert len(recorder.events()) == 2

    def test_operation_events_are_sequenced(self):
        recorder = HistoryRecorder()
        recorder.record_operation(
            session="c0", op="read", key="k", invoked=1.0, completed=1.1,
            etag="v1", version=3, level="cdn", frontier=0.5,
            degraded=False, hedged=False, retried=False, fast_failed=False,
        )
        recorder.record_install("k", "v2", 2.0)
        events = recorder.events()
        assert [e.seq for e in events] == [0, 1]
        assert events[0].kind == KIND_OPERATION
        assert events[1].kind == KIND_INSTALL


class TestWireFormat:
    def test_tuple_roundtrip(self):
        recorder = HistoryRecorder()
        recorder.record_install("k", "v1", 1.0)
        recorder.record_operation(
            session="c0", op="query", key="q", invoked=1.0, completed=1.5,
            etag="f1", version=None, level="origin", frontier=1.5,
            degraded=True, hedged=True, retried=False, fast_failed=True,
        )
        events = recorder.events()
        rebuilt = events_from_tuples(e.to_tuple() for e in events)
        assert rebuilt == events

    def test_canonical_bytes_is_order_sensitive(self):
        a = HistoryEvent(
            seq=0, kind=KIND_INSTALL, session="", op="install", key="k",
            invoked=1.0, completed=1.0, etag="v1", version=None, level="origin",
            frontier=0.0, degraded=False, hedged=False, retried=False,
            fast_failed=False,
        )
        b = HistoryEvent(
            seq=1, kind=KIND_INSTALL, session="", op="install", key="k",
            invoked=2.0, completed=2.0, etag="v2", version=None, level="origin",
            frontier=0.0, degraded=False, hedged=False, retried=False,
            fast_failed=False,
        )
        assert canonical_bytes([a, b]) != canonical_bytes([b, a])
        assert canonical_bytes([a, b]) == canonical_bytes([a, b])

    def test_describe_is_one_line(self):
        event = HistoryEvent(
            seq=7, kind=KIND_OPERATION, session="c1", op="read", key="k",
            invoked=1.0, completed=1.2, etag="v1", version=4, level="cdn",
            frontier=0.9, degraded=True, hedged=False, retried=True,
            fast_failed=False,
        )
        text = event.describe()
        assert "\n" not in text
        assert "#7" in text and "c1" in text and "read" in text


class TestSimulatorIntegration:
    @pytest.fixture(scope="class")
    def recorded(self):
        simulator = Simulator(_config(record_history=True))
        result = simulator.run()
        return simulator, result

    def test_seeded_runs_record_identical_histories(self, recorded):
        simulator, _ = recorded
        again = Simulator(_config(record_history=True))
        again.run()
        assert canonical_bytes(again.history_events()) == canonical_bytes(
            simulator.history_events()
        )

    def test_recording_leaves_no_behavioral_footprint(self, recorded):
        """record_history=True must not change a single result value."""
        _, result = recorded
        plain = Simulator(_config(record_history=False)).run()
        assert plain.summary() == result.summary()

    def test_history_off_is_empty(self):
        simulator = Simulator(_config(record_history=False))
        simulator.run()
        assert simulator.history_events() == ()
        assert simulator.history_tuples() == ()

    def test_history_covers_every_operation(self, recorded):
        simulator, _ = recorded
        ops = [e for e in simulator.history_events() if e.kind == KIND_OPERATION]
        assert len(ops) == 400
        # Monotone invocation order within the drained history.
        invocations = [e.invoked for e in ops]
        assert invocations == sorted(invocations)

    def test_reads_carry_observed_versions(self, recorded):
        simulator, _ = recorded
        versioned = [
            e
            for e in simulator.history_events()
            if e.kind == KIND_OPERATION and e.version is not None
        ]
        assert versioned, "no operation recorded an observed version"
