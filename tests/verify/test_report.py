"""Witness shrinking and report rendering."""

from __future__ import annotations

import pytest

from repro.verify.checkers import check_monotonic_reads, run_all
from repro.verify.history import KIND_OPERATION, HistoryEvent
from repro.verify.report import (
    render_report,
    render_timeline,
    shrink_first_violation,
    shrink_history,
)


def read(seq: int, session: str, key: str, at: float, version: int) -> HistoryEvent:
    return HistoryEvent(
        seq=seq, kind=KIND_OPERATION, session=session, op="read", key=key,
        invoked=at, completed=at + 0.01, etag=None, version=version,
        level="cdn", frontier=0.0, degraded=False, hedged=False,
        retried=False, fast_failed=False,
    )


def _regression_history(noise: int = 40):
    """Lots of passing reads plus one two-event monotonic regression."""
    events = [read(i, f"n{i % 5}", f"pad{i}", float(i), 1) for i in range(noise)]
    events.append(read(noise, "victim", "k", float(noise), 9))
    events.append(read(noise + 1, "victim", "k", float(noise + 1), 2))
    return events


class TestShrinkHistory:
    def test_raises_on_a_passing_history(self):
        with pytest.raises(ValueError):
            shrink_history([], lambda events: False)

    def test_shrinks_to_the_minimal_witness(self):
        events = _regression_history()

        def still_fails(candidate):
            return not check_monotonic_reads(candidate).ok

        witness = shrink_history(events, still_fails)
        # The regression needs exactly two events: the high read and the
        # low re-read in the same session.
        assert len(witness) == 2
        assert [e.session for e in witness] == ["victim", "victim"]
        assert [e.version for e in witness] == [9, 2]

    def test_witness_is_one_minimal(self):
        events = _regression_history(noise=10)

        def still_fails(candidate):
            return not check_monotonic_reads(candidate).ok

        witness = shrink_history(events, still_fails)
        for index in range(len(witness)):
            poked = witness[:index] + witness[index + 1:]
            assert not still_fails(poked)

    def test_preserves_history_order(self):
        events = _regression_history(noise=20)

        def still_fails(candidate):
            return not check_monotonic_reads(candidate).ok

        witness = shrink_history(events, still_fails)
        seqs = [event.seq for event in witness]
        assert seqs == sorted(seqs)


class TestShrinkFirstViolation:
    def test_returns_none_for_a_passing_history(self):
        events = [read(0, "c0", "k", 1.0, 1)]
        assert shrink_first_violation(events, lambda e: run_all(e, 10.0)) is None

    def test_finds_and_shrinks_a_violation(self):
        events = _regression_history(noise=15)
        witness = shrink_first_violation(events, lambda e: run_all(e, 10.0))
        assert witness is not None
        assert len(witness) == 2


class TestRendering:
    def test_timeline_renders_one_line_per_event(self):
        events = _regression_history(noise=3)
        assert len(render_timeline(events).splitlines()) == len(events)

    def test_empty_timeline(self):
        assert render_timeline([]) == "(empty history)"

    def test_report_includes_verdicts_and_witness(self):
        events = _regression_history(noise=5)
        reports = run_all(events, delta_budget=10.0)
        witness = shrink_first_violation(events, lambda e: run_all(e, 10.0))
        text = render_report(reports, witness=witness, scenario="unit")
        assert "scenario: unit" in text
        assert "monotonic-reads" in text
        assert "violation" in text
        # The shrunk witness timeline is embedded.
        assert "victim" in text

    def test_passing_report_has_no_violation_section(self):
        reports = run_all([], delta_budget=1.0)
        text = render_report(reports)
        assert "violations:" not in text
