"""Degraded serves must never advance the causal frontier.

Regression for the stale-if-error x session-guarantee interaction: a
stale-if-error response is explicitly outside the session's causal
past, so serving it may not move ``causal_frontier`` -- otherwise a
later causal read could be whitelisted against cached state the
session never actually observed fresh.  Pinned both at the SDK level
(the live ``causal_frontier`` value) and through the offline
causal-frontier checker over a recorded history.
"""

from __future__ import annotations

from repro.client import QuaestorClient
from repro.client.sdk import DEGRADED_LEVEL
from repro.clock import VirtualClock
from repro.cluster import ClusterClient, QuaestorCluster
from repro.core.consistency import ConsistencyLevel
from repro.replication import ReplicationConfig
from repro.resilience import ResilienceConfig
from repro.simulation.latency import LatencyModel
from repro.verify.checkers import check_causal_frontier
from repro.verify.history import HistoryRecorder


def build(consistency=ConsistencyLevel.DELTA_ATOMIC):
    clock = VirtualClock()
    resilience = ResilienceConfig()
    cluster = QuaestorCluster(
        num_shards=1,
        clock=clock,
        matching_nodes=2,
        replication=ReplicationConfig(
            replication_factor=1, lag=LatencyModel(mean=0.01, jitter=0.0)
        ),
        resilience=resilience,
    )
    facade = ClusterClient(cluster)
    client = QuaestorClient(
        facade,
        clock=clock,
        refresh_interval=0.5,
        resilience=resilience,
        consistency=consistency,
    )
    client.connect()
    facade.handle_insert("posts", {"_id": "p1", "views": 1})
    return clock, cluster, client


def force_degraded_read(clock, cluster, client):
    """Expire the cached copy, crash the origin, read stale-if-error."""
    entry = client.client_cache.peek("record:posts/p1")
    assert entry is not None
    clock.advance(entry.fresh_until - clock.now() + 2.0)
    cluster.crash_node(cluster.groups[0].primary_node_id)
    result = client.read("posts", "p1")
    assert result.level == DEGRADED_LEVEL and result.degraded
    return result


class TestSdkFrontier:
    def test_degraded_read_does_not_advance_the_frontier(self):
        clock, cluster, client = build()
        client.read("posts", "p1")
        frontier_before = client.causal_frontier
        force_degraded_read(clock, cluster, client)
        assert client.causal_frontier == frontier_before

    def test_degraded_read_under_causal_does_not_advance_the_frontier(self):
        clock, cluster, client = build(consistency=ConsistencyLevel.CAUSAL)
        client.read("posts", "p1")
        frontier_before = client.causal_frontier
        force_degraded_read(clock, cluster, client)
        assert client.causal_frontier == frontier_before

    def test_fresh_causal_read_does_advance_the_frontier(self):
        """Control: the invariant is about degraded serves specifically.

        Under CAUSAL an origin-served read marks primary-fresh state and
        advances the frontier; the degraded serve above must not.
        """
        clock, cluster, client = build(consistency=ConsistencyLevel.CAUSAL)
        clock.advance(1.0)
        client.read("posts", "p1")  # origin miss: primary-fresh
        assert client.causal_frontier > 0.0

    def test_acknowledged_write_does_advance_the_frontier(self):
        clock, cluster, client = build()
        frontier_before = client.causal_frontier
        clock.advance(1.0)
        client.update("posts", "p1", {"views": 2})
        assert client.causal_frontier > frontier_before


class TestRecordedHistory:
    def _record(self, client, recorder, result, clock):
        recorder.record_operation(
            session="c0",
            op="read",
            key="record:posts/p1",
            invoked=clock.now(),
            completed=clock.now(),
            etag=result.etag if hasattr(result, "etag") else None,
            version=result.version,
            level=result.level,
            frontier=client.causal_frontier,
            degraded=result.degraded,
            hedged=False,
            retried=False,
            fast_failed=False,
        )

    def test_checker_passes_the_real_sdk_trace(self):
        clock, cluster, client = build()
        recorder = HistoryRecorder()
        self._record(client, recorder, client.read("posts", "p1"), clock)
        self._record(
            client, recorder, force_degraded_read(clock, cluster, client), clock
        )
        report = check_causal_frontier(recorder.events())
        assert report.ok, report.violations

    def test_checker_catches_a_frontier_advancing_degraded_serve(self):
        """If the SDK ever regressed, this is the violation it would raise."""
        clock, cluster, client = build()
        recorder = HistoryRecorder()
        self._record(client, recorder, client.read("posts", "p1"), clock)
        result = force_degraded_read(clock, cluster, client)
        recorder.record_operation(
            session="c0",
            op="read",
            key="record:posts/p1",
            invoked=clock.now(),
            completed=clock.now(),
            etag=None,
            version=result.version,
            level=result.level,
            frontier=client.causal_frontier + 5.0,  # the buggy advance
            degraded=True,
            hedged=False,
            retried=False,
            fast_failed=False,
        )
        report = check_causal_frontier(recorder.events())
        assert not report.ok
        assert "degraded" in report.violations[0].description
