"""Histories must be byte-identical across serial oracle and worker counts."""

from __future__ import annotations

import pytest

from repro.simulation.parallel import ParallelSimulator, serial_oracle
from repro.simulation.simulator import SimulationConfig
from repro.verify.history import canonical_bytes


@pytest.fixture(scope="module")
def config():
    return SimulationConfig(
        seed=42,
        num_shards=2,
        replication_factor=3,
        num_clients=4,
        connections_per_client=2,
        duration=30.0,
        max_operations=400,
        matching_nodes=2,
        record_history=True,
    )


@pytest.fixture(scope="module")
def oracle(config):
    return serial_oracle(config, num_partitions=2)


@pytest.fixture(scope="module")
def parallel2(config):
    return ParallelSimulator(config, num_partitions=2, num_workers=2).run()


class TestHistoryParity:
    def test_oracle_records_a_history(self, oracle):
        assert oracle.history
        assert len(oracle.history_events()) == len(oracle.history)

    def test_parallel_matches_serial_oracle_byte_for_byte(self, oracle, parallel2):
        assert canonical_bytes(parallel2.history_events()) == canonical_bytes(
            oracle.history_events()
        )

    def test_worker_count_leaves_no_trace(self, config, parallel2):
        inline = ParallelSimulator(config, num_partitions=2, num_workers=1).run()
        assert canonical_bytes(inline.history_events()) == canonical_bytes(
            parallel2.history_events()
        )

    def test_merge_renumbers_seq_globally(self, oracle):
        seqs = [event.seq for event in oracle.history_events()]
        assert seqs == list(range(len(seqs)))

    def test_history_off_merges_empty(self, config):
        from dataclasses import replace

        plain = serial_oracle(replace(config, record_history=False), num_partitions=2)
        assert plain.history == ()
        assert plain.history_events() == ()
