"""Tests for cache entries, expiration-based and invalidation-based caches."""

from __future__ import annotations

import pytest

from repro.caching import CacheEntry, ExpirationCache, InvalidationCache
from repro.clock import VirtualClock
from repro.rest import Response


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


class TestCacheEntry:
    def test_freshness_window(self):
        entry = CacheEntry(key="k", body=1, etag=None, stored_at=10.0, ttl=5.0)
        assert entry.fresh_until == 15.0
        assert entry.is_fresh(14.9)
        assert not entry.is_fresh(15.0)

    def test_age_and_remaining_ttl(self):
        entry = CacheEntry(key="k", body=1, etag=None, stored_at=10.0, ttl=5.0)
        assert entry.age(12.0) == 2.0
        assert entry.remaining_ttl(12.0) == 3.0
        assert entry.remaining_ttl(20.0) == 0.0

    def test_refreshed_restamps(self):
        entry = CacheEntry(key="k", body=1, etag='"e"', stored_at=0.0, ttl=5.0)
        refreshed = entry.refreshed(now=10.0)
        assert refreshed.stored_at == 10.0
        assert refreshed.is_fresh(12.0)
        assert refreshed.etag == '"e"'

    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            CacheEntry(key="k", body=1, etag=None, stored_at=0.0, ttl=-1.0)


class TestExpirationCache:
    def test_serves_fresh_entries(self, clock):
        cache = ExpirationCache("browser", clock)
        cache.store("key", Response.ok("body", ttl=10.0))
        entry = cache.lookup("key")
        assert entry is not None and entry.body == "body"
        assert cache.stats.hits == 1

    def test_expired_entries_are_misses(self, clock):
        cache = ExpirationCache("browser", clock)
        cache.store("key", Response.ok("body", ttl=5.0))
        clock.advance(6.0)
        assert cache.lookup("key") is None
        assert cache.stats.stale_hits == 1

    def test_uncacheable_responses_are_not_stored(self, clock):
        cache = ExpirationCache("browser", clock)
        assert cache.store("key", Response.uncacheable("body")) is None
        assert "key" not in cache

    def test_private_cache_uses_max_age_not_smaxage(self, clock):
        cache = ExpirationCache("browser", clock, shared=False)
        cache.store("key", Response.ok("body", ttl=2.0, shared_ttl=100.0))
        clock.advance(3.0)
        assert cache.lookup("key") is None

    def test_shared_cache_uses_smaxage(self, clock):
        cache = ExpirationCache("isp-proxy", clock, shared=True)
        cache.store("key", Response.ok("body", ttl=2.0, shared_ttl=100.0))
        clock.advance(3.0)
        assert cache.lookup("key") is not None

    def test_no_purge_support(self, clock):
        assert ExpirationCache("browser", clock).supports_purge is False

    def test_lru_eviction(self, clock):
        cache = ExpirationCache("browser", clock, max_entries=2)
        cache.store("a", Response.ok(1, ttl=100))
        cache.store("b", Response.ok(2, ttl=100))
        cache.lookup("a")  # a becomes most recently used
        cache.store("c", Response.ok(3, ttl=100))
        assert "a" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_refresh_restamps_entry(self, clock):
        cache = ExpirationCache("browser", clock)
        cache.store("key", Response.ok("body", ttl=5.0))
        clock.advance(6.0)
        assert cache.lookup("key") is None
        cache.refresh("key")
        assert cache.lookup("key") is not None
        assert cache.stats.revalidations == 1

    def test_expire_now_evicts_stale(self, clock):
        cache = ExpirationCache("browser", clock)
        cache.store("a", Response.ok(1, ttl=1.0))
        cache.store("b", Response.ok(2, ttl=100.0))
        clock.advance(2.0)
        assert cache.expire_now() == 1
        assert len(cache) == 1

    def test_peek_does_not_count(self, clock):
        cache = ExpirationCache("browser", clock)
        cache.store("key", Response.ok(1, ttl=1.0))
        clock.advance(5.0)
        assert cache.peek("key") is not None
        assert cache.stats.misses == 0


class TestStoreFresh:
    def test_store_fresh_matches_store_of_a_cacheable_response(self, clock):
        """The fast path mints the same entry a cacheable 200 would produce."""
        via_response = ExpirationCache("slow", clock)
        via_fast = ExpirationCache("fast", clock)
        clock.advance(3.0)
        slow_entry = via_response.store(
            "k", Response.ok({"document": {"a": 1}}, ttl=7.0, etag='"e"')
        )
        fast_entry = via_fast.store_fresh("k", {"document": {"a": 1}}, '"e"', 7.0)
        assert fast_entry == slow_entry
        assert via_fast.lookup("k").body == via_response.lookup("k").body

    def test_store_fresh_rejects_non_positive_ttl(self, clock):
        cache = ExpirationCache("c", clock)
        assert cache.store_fresh("k", 1, None, 0.0) is None
        assert cache.store_fresh("k", 1, None, -1.0) is None
        assert "k" not in cache

    def test_store_fresh_respects_lru_bound(self, clock):
        cache = ExpirationCache("c", clock, max_entries=2)
        cache.store_fresh("a", 1, None, 10.0)
        cache.store_fresh("b", 2, None, 10.0)
        cache.store_fresh("c", 3, None, 10.0)
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert cache.stats.evictions == 1


class TestInvalidationCache:
    def test_purge_removes_entry(self, clock):
        cdn = InvalidationCache("cdn", clock)
        cdn.store("key", Response.ok("body", ttl=100.0))
        assert cdn.purge("key") is True
        assert cdn.lookup("key") is None
        assert cdn.stats.purges == 1

    def test_purge_missing_key(self, clock):
        cdn = InvalidationCache("cdn", clock)
        assert cdn.purge("missing") is False

    def test_purge_many(self, clock):
        cdn = InvalidationCache("cdn", clock)
        cdn.store("a", Response.ok(1, ttl=100.0))
        cdn.store("b", Response.ok(2, ttl=100.0))
        assert cdn.purge_many(["a", "b", "c"]) == 2

    def test_is_shared_cache(self, clock):
        cdn = InvalidationCache("cdn", clock)
        cdn.store("key", Response.ok("body", ttl=1.0, shared_ttl=50.0))
        clock.advance(10.0)
        assert cdn.lookup("key") is not None
        assert cdn.supports_purge is True

    def test_statistics_dictionary(self, clock):
        cdn = InvalidationCache("cdn", clock)
        cdn.store("key", Response.ok("body", ttl=10.0))
        cdn.lookup("key")
        cdn.lookup("missing")
        stats = cdn.stats.as_dict()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
