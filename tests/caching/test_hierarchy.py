"""Tests for the cache hierarchy (client cache -> CDN -> origin)."""

from __future__ import annotations

import pytest

from repro.caching import CacheHierarchy, ExpirationCache, InvalidationCache
from repro.caching.hierarchy import ORIGIN_LEVEL
from repro.clock import VirtualClock
from repro.rest import Response


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture
def setup(clock):
    """A two-level hierarchy with a counting origin."""
    browser = ExpirationCache("browser", clock)
    cdn = InvalidationCache("cdn", clock)
    calls = {"count": 0}

    def origin(key: str) -> Response:
        calls["count"] += 1
        return Response.ok(f"body-of-{key}-v{calls['count']}", ttl=10.0, shared_ttl=30.0, etag=f'"{calls["count"]}"')

    hierarchy = CacheHierarchy([("client", browser), ("cdn", cdn)], origin)
    return {"browser": browser, "cdn": cdn, "hierarchy": hierarchy, "calls": calls, "clock": clock}


class TestFetch:
    def test_miss_goes_to_origin_and_populates_all_levels(self, setup):
        result = setup["hierarchy"].fetch("key")
        assert result.level == ORIGIN_LEVEL
        assert setup["calls"]["count"] == 1
        assert "key" in setup["browser"]
        assert "key" in setup["cdn"]

    def test_second_fetch_hits_client_cache(self, setup):
        setup["hierarchy"].fetch("key")
        result = setup["hierarchy"].fetch("key")
        assert result.level == "client"
        assert result.served_by_cache
        assert setup["calls"]["count"] == 1

    def test_cdn_hit_after_client_expiry(self, setup):
        setup["hierarchy"].fetch("key")
        setup["clock"].advance(15.0)  # client TTL (10 s) expired, CDN (30 s) still fresh
        result = setup["hierarchy"].fetch("key")
        assert result.level == "cdn"
        assert setup["calls"]["count"] == 1

    def test_cdn_hit_refreshes_downstream_client_cache(self, setup):
        setup["hierarchy"].fetch("key")
        setup["cdn"].purge("key")
        setup["hierarchy"].fetch("key")  # repopulates both
        setup["clock"].advance(15.0)
        setup["hierarchy"].fetch("key")  # CDN hit, copies into the client cache
        entry = setup["browser"].peek("key")
        assert entry is not None

    def test_full_expiry_returns_to_origin(self, setup):
        setup["hierarchy"].fetch("key")
        setup["clock"].advance(31.0)
        result = setup["hierarchy"].fetch("key")
        assert result.level == ORIGIN_LEVEL
        assert setup["calls"]["count"] == 2

    def test_revalidation_skips_client_cache_but_may_use_cdn(self, setup):
        setup["hierarchy"].fetch("key")
        result = setup["hierarchy"].fetch("key", revalidate=True)
        # The CDN is an invalidation-based cache, so it may answer revalidations.
        assert result.level == "cdn"
        assert result.revalidated

    def test_revalidation_goes_to_origin_when_cdn_purged(self, setup):
        setup["hierarchy"].fetch("key")
        setup["cdn"].purge("key")
        result = setup["hierarchy"].fetch("key", revalidate=True)
        assert result.level == ORIGIN_LEVEL
        assert setup["calls"]["count"] == 2

    def test_bypass_all_caches(self, setup):
        setup["hierarchy"].fetch("key")
        result = setup["hierarchy"].fetch("key", bypass_all_caches=True)
        assert result.level == ORIGIN_LEVEL
        assert setup["calls"]["count"] == 2

    def test_purge_clears_only_invalidation_caches(self, setup):
        setup["hierarchy"].fetch("key")
        purged = setup["hierarchy"].purge("key")
        assert purged == 1
        assert "key" in setup["browser"]
        assert "key" not in setup["cdn"]


class TestConfiguration:
    def test_duplicate_level_names_rejected(self, clock):
        browser = ExpirationCache("a", clock)
        cdn = InvalidationCache("b", clock)
        with pytest.raises(ValueError):
            CacheHierarchy([("same", browser), ("same", cdn)], lambda key: Response.ok(1, ttl=1))

    def test_level_lookup(self, setup):
        hierarchy = setup["hierarchy"]
        assert hierarchy.level_names == ["client", "cdn"]
        assert hierarchy.cache("cdn") is setup["cdn"]
        with pytest.raises(KeyError):
            hierarchy.cache("unknown")

    def test_empty_hierarchy_always_hits_origin(self, setup):
        hierarchy = CacheHierarchy([], lambda key: Response.ok("fresh", ttl=10.0))
        assert hierarchy.fetch("key").level == ORIGIN_LEVEL
        assert hierarchy.fetch("key").level == ORIGIN_LEVEL

    def test_uncacheable_origin_response_not_stored(self, clock):
        browser = ExpirationCache("browser", clock)
        hierarchy = CacheHierarchy(
            [("client", browser)], lambda key: Response.uncacheable("private")
        )
        hierarchy.fetch("key")
        assert "key" not in browser
