"""Tests for the key-value-store-backed (distributed) Expiring Bloom Filter."""

from __future__ import annotations

import pytest

from repro.bloom import ExpiringBloomFilter, KVBackedExpiringBloomFilter
from repro.clock import VirtualClock
from repro.kvstore import KeyValueStore


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture
def store(clock: VirtualClock) -> KeyValueStore:
    return KeyValueStore(clock=clock)


@pytest.fixture
def backed(store: KeyValueStore) -> KVBackedExpiringBloomFilter:
    return KVBackedExpiringBloomFilter(store, num_bits=2048, num_hashes=4)


class TestBasicBehaviour:
    def test_invalidation_within_ttl_marks_stale(self, backed, clock):
        backed.report_read("query:q1", ttl=10.0)
        clock.advance(1.0)
        assert backed.report_invalidation("query:q1") is True
        assert backed.contains("query:q1")
        assert backed.is_stale("query:q1")

    def test_invalidation_after_expiry_ignored(self, backed, clock):
        backed.report_read("query:q1", ttl=2.0)
        clock.advance(3.0)
        assert backed.report_invalidation("query:q1") is False
        assert not backed.contains("query:q1")

    def test_expiry_removes_entries(self, backed, clock):
        backed.report_read("k", ttl=5.0)
        backed.report_invalidation("k")
        clock.advance(6.0)
        assert backed.expire() >= 1
        assert len(backed) == 0

    def test_flat_snapshot(self, backed):
        backed.report_read("stale", ttl=50.0)
        backed.report_read("fresh", ttl=50.0)
        backed.report_invalidation("stale")
        flat = backed.to_flat()
        assert flat.contains("stale")
        assert not flat.contains("fresh")

    def test_statistics(self, backed):
        backed.report_read("a", ttl=10.0)
        backed.report_invalidation("a")
        stats = backed.statistics()
        assert stats.stale_keys == 1
        assert stats.tracked_keys == 1

    def test_invalid_geometry(self, store):
        with pytest.raises(ValueError):
            KVBackedExpiringBloomFilter(store, num_bits=0)
        with pytest.raises(ValueError):
            KVBackedExpiringBloomFilter(store, num_hashes=0)


class TestSharedState:
    def test_two_frontends_share_state_through_the_store(self, store, clock):
        """Multiple DBaaS servers share one EBF via the key-value store."""
        server_a = KVBackedExpiringBloomFilter(store, num_bits=1024, num_hashes=4)
        server_b = KVBackedExpiringBloomFilter(store, num_bits=1024, num_hashes=4)
        server_a.report_read("query:shared", ttl=30.0)
        server_b.report_invalidation("query:shared")
        assert server_a.contains("query:shared")
        assert server_b.contains("query:shared")

    def test_namespaces_isolate_tables(self, store):
        """Per-table partitioning: each table gets its own EBF namespace."""
        posts_ebf = KVBackedExpiringBloomFilter(store, num_bits=1024, namespace="posts")
        users_ebf = KVBackedExpiringBloomFilter(store, num_bits=1024, namespace="users")
        posts_ebf.report_read("query:q", ttl=30.0)
        posts_ebf.report_invalidation("query:q")
        assert posts_ebf.contains("query:q")
        assert not users_ebf.contains("query:q")

    def test_partition_union_aggregates_tables(self, store):
        """The aggregated client filter is the union of per-table partitions."""
        posts_ebf = KVBackedExpiringBloomFilter(store, num_bits=1024, namespace="posts")
        users_ebf = KVBackedExpiringBloomFilter(store, num_bits=1024, namespace="users")
        posts_ebf.report_read("query:p", ttl=30.0)
        posts_ebf.report_invalidation("query:p")
        users_ebf.report_read("query:u", ttl=30.0)
        users_ebf.report_invalidation("query:u")
        union = posts_ebf.to_flat() | users_ebf.to_flat()
        assert union.contains("query:p")
        assert union.contains("query:u")


class TestEquivalenceWithInMemory:
    def test_same_scenario_same_answers(self, store, clock):
        """The distributed variant behaves exactly like the in-memory EBF."""
        in_memory = ExpiringBloomFilter(num_bits=1024, num_hashes=4, clock=clock)
        distributed = KVBackedExpiringBloomFilter(store, num_bits=1024, num_hashes=4)
        scenario = [
            ("read", "q1", 10.0),
            ("read", "q2", 5.0),
            ("invalidate", "q1", None),
            ("advance", None, 3.0),
            ("invalidate", "q2", None),
            ("advance", None, 3.0),
            ("read", "q3", 2.0),
            ("invalidate", "q3", None),
            ("advance", None, 20.0),
        ]
        for action, key, value in scenario:
            if action == "read":
                in_memory.report_read(key, value)
                distributed.report_read(key, value)
            elif action == "invalidate":
                in_memory.report_invalidation(key)
                distributed.report_invalidation(key)
            else:
                clock.advance(value)
        for key in ("q1", "q2", "q3"):
            assert in_memory.contains(key) == distributed.contains(key)

    def test_operation_counter_tracks_store_load(self, store, backed):
        """Every EBF operation is expressed as store commands (load accounting)."""
        before = store.operations
        backed.report_read("key", ttl=10.0)
        backed.report_invalidation("key")
        assert store.operations > before
