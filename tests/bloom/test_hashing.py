"""Tests for the Bloom filter hashing helpers."""

from __future__ import annotations

import pytest

from repro.bloom import hashing


class TestFnv1a:
    def test_deterministic(self):
        assert hashing.fnv1a_64(b"quaestor") == hashing.fnv1a_64(b"quaestor")

    def test_different_inputs_differ(self):
        assert hashing.fnv1a_64(b"a") != hashing.fnv1a_64(b"b")

    def test_stays_within_64_bits(self):
        value = hashing.fnv1a_64(b"some arbitrarily long input " * 10)
        assert 0 <= value < 2**64


class TestHashPair:
    def test_second_hash_is_odd(self):
        for key in ("a", "b", "record:posts/1", "query:xyz"):
            _, h2 = hashing.hash_pair(key)
            assert h2 % 2 == 1

    def test_accepts_bytes_and_str(self):
        assert hashing.hash_pair("key") == hashing.hash_pair(b"key")


class TestPositions:
    def test_returns_requested_number_of_positions(self):
        assert len(hashing.positions("key", 5, 1000)) == 5

    def test_positions_in_range(self):
        for position in hashing.positions("key", 10, 97):
            assert 0 <= position < 97

    def test_deterministic(self):
        assert hashing.positions("key", 4, 128) == hashing.positions("key", 4, 128)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            hashing.positions("key", 0, 10)
        with pytest.raises(ValueError):
            hashing.positions("key", 1, 0)

    def test_distinct_positions_unique(self):
        positions = hashing.distinct_positions("key", 8, 16)
        assert len(positions) == len(set(positions))

    def test_distinct_positions_subset_of_positions(self):
        raw = hashing.positions("key", 8, 16)
        distinct = hashing.distinct_positions("key", 8, 16)
        assert set(distinct) == set(raw)


class TestSpread:
    def test_stable_uint64_is_deterministic(self):
        assert hashing.stable_uint64("x") == hashing.stable_uint64("x")

    def test_spread_assigns_buckets_in_range(self):
        keys = [f"key-{index}" for index in range(100)]
        for bucket in hashing.spread(keys, 7):
            assert 0 <= bucket < 7

    def test_spread_uses_all_buckets_for_many_keys(self):
        keys = [f"key-{index}" for index in range(500)]
        assert set(hashing.spread(keys, 4)) == {0, 1, 2, 3}

    def test_spread_rejects_non_positive_buckets(self):
        with pytest.raises(ValueError):
            hashing.spread(["a"], 0)
