"""Tests for Bloom filter sizing arithmetic."""

from __future__ import annotations

import pytest

from repro.bloom.sizing import (
    PAPER_DEFAULT_BITS,
    false_positive_rate,
    optimal_bit_count,
    optimal_hash_count,
    transfer_size_bytes,
)


class TestFalsePositiveRate:
    def test_empty_filter_has_no_false_positives(self):
        assert false_positive_rate(1000, 4, 0) == 0.0

    def test_rate_grows_with_items(self):
        sparse = false_positive_rate(10_000, 4, 100)
        dense = false_positive_rate(10_000, 4, 5_000)
        assert dense > sparse

    def test_rate_shrinks_with_bits(self):
        small = false_positive_rate(1_000, 4, 500)
        large = false_positive_rate(100_000, 4, 500)
        assert large < small

    def test_paper_sizing_roughly_six_percent_at_20k(self):
        """The paper: a 14.6 KB filter holds 20,000 stale queries at ~6 % FPR."""
        hashes = optimal_hash_count(PAPER_DEFAULT_BITS, 20_000)
        rate = false_positive_rate(PAPER_DEFAULT_BITS, hashes, 20_000)
        assert 0.01 < rate < 0.10

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            false_positive_rate(0, 4, 10)
        with pytest.raises(ValueError):
            false_positive_rate(100, 0, 10)
        with pytest.raises(ValueError):
            false_positive_rate(100, 4, -1)


class TestOptimalSizing:
    def test_bit_count_grows_with_items(self):
        assert optimal_bit_count(10_000, 0.05) > optimal_bit_count(1_000, 0.05)

    def test_bit_count_grows_with_stricter_fp_rate(self):
        assert optimal_bit_count(1_000, 0.001) > optimal_bit_count(1_000, 0.1)

    def test_hash_count_at_least_one(self):
        assert optimal_hash_count(10, 1_000_000) == 1

    def test_optimal_configuration_meets_target(self):
        items, target = 5_000, 0.02
        bits = optimal_bit_count(items, target)
        hashes = optimal_hash_count(bits, items)
        assert false_positive_rate(bits, hashes, items) <= target * 1.3

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            optimal_bit_count(0, 0.01)
        with pytest.raises(ValueError):
            optimal_bit_count(10, 1.5)
        with pytest.raises(ValueError):
            optimal_hash_count(0, 10)


class TestTransferSize:
    def test_rounds_up_to_bytes(self):
        assert transfer_size_bytes(8) == 1
        assert transfer_size_bytes(9) == 2

    def test_paper_default_fits_initial_congestion_window(self):
        assert transfer_size_bytes(PAPER_DEFAULT_BITS) == 14_600

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            transfer_size_bytes(0)
