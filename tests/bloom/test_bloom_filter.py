"""Tests for the flat Bloom filter (the client copy)."""

from __future__ import annotations

import pytest

from repro.bloom import BloomFilter


@pytest.fixture
def small_filter() -> BloomFilter:
    return BloomFilter(num_bits=256, num_hashes=4)


class TestMembership:
    def test_added_keys_are_contained(self, small_filter: BloomFilter):
        small_filter.add("query:a")
        small_filter.add("record:posts/1")
        assert "query:a" in small_filter
        assert small_filter.contains("record:posts/1")

    def test_no_false_negatives(self):
        bloom = BloomFilter.with_capacity(500, target_fp_rate=0.01)
        keys = [f"key-{index}" for index in range(500)]
        for key in keys:
            bloom.add(key)
        assert all(bloom.contains(key) for key in keys)

    def test_unknown_key_usually_not_contained(self, small_filter: BloomFilter):
        small_filter.add("present")
        assert not small_filter.contains("definitely-absent-key")

    def test_empty_filter_contains_nothing(self, small_filter: BloomFilter):
        assert not small_filter.contains("anything")

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter.with_capacity(1_000, target_fp_rate=0.02)
        for index in range(1_000):
            bloom.add(f"member-{index}")
        false_positives = sum(
            1 for index in range(10_000) if bloom.contains(f"non-member-{index}")
        )
        assert false_positives / 10_000 < 0.08


class TestConstruction:
    def test_rejects_invalid_geometry(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 4)
        with pytest.raises(ValueError):
            BloomFilter(128, 0)

    def test_from_keys(self):
        bloom = BloomFilter.from_keys(["a", "b", "c"], num_bits=128, num_hashes=3)
        assert all(key in bloom for key in ("a", "b", "c"))
        assert len(bloom) == 3


class TestOperations:
    def test_clear_empties_filter(self, small_filter: BloomFilter):
        small_filter.add("key")
        small_filter.clear()
        assert not small_filter.contains("key")
        assert len(small_filter) == 0
        assert small_filter.fill_ratio() == 0.0

    def test_union_contains_both_sides(self):
        left = BloomFilter(512, 4)
        right = BloomFilter(512, 4)
        left.add("left-key")
        right.add("right-key")
        merged = left | right
        assert merged.contains("left-key")
        assert merged.contains("right-key")

    def test_union_requires_same_geometry(self):
        with pytest.raises(ValueError):
            BloomFilter(128, 4).union(BloomFilter(256, 4))

    def test_copy_is_independent(self, small_filter: BloomFilter):
        small_filter.add("original")
        clone = small_filter.copy()
        clone.add("only-in-clone")
        assert not small_filter.contains("only-in-clone")
        assert clone.contains("original")

    def test_fill_ratio_increases_with_insertions(self, small_filter: BloomFilter):
        before = small_filter.fill_ratio()
        for index in range(20):
            small_filter.add(f"key-{index}")
        assert small_filter.fill_ratio() > before

    def test_estimated_false_positive_rate_monotone(self, small_filter: BloomFilter):
        empty_rate = small_filter.estimated_false_positive_rate()
        for index in range(50):
            small_filter.add(f"key-{index}")
        assert small_filter.estimated_false_positive_rate() > empty_rate


class TestSerialisation:
    def test_round_trip_preserves_membership(self):
        bloom = BloomFilter(1024, 5)
        for index in range(100):
            bloom.add(f"key-{index}")
        restored = BloomFilter.from_bytes(bloom.to_bytes(), 1024, 5)
        assert all(restored.contains(f"key-{index}") for index in range(100))

    def test_payload_length_matches_geometry(self):
        bloom = BloomFilter(1024, 5)
        assert len(bloom.to_bytes()) == 128

    def test_from_bytes_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(b"\x00" * 10, 1024, 5)

    def test_iter_set_bits_matches_fill(self):
        bloom = BloomFilter(128, 2)
        bloom.add("key")
        set_bits = list(bloom.iter_set_bits())
        assert 1 <= len(set_bits) <= 2
        assert all(0 <= index < 128 for index in set_bits)
