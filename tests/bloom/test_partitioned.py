"""Tests for the per-table partitioned Expiring Bloom Filter."""

from __future__ import annotations

import pytest

from repro.bloom import PartitionedExpiringBloomFilter
from repro.bloom.partitioned import default_router
from repro.clock import VirtualClock
from repro.db.query import Query, record_key


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture
def partitioned(clock) -> PartitionedExpiringBloomFilter:
    return PartitionedExpiringBloomFilter(num_bits=2048, num_hashes=4, clock=clock)


class TestRouting:
    def test_record_keys_route_to_their_table(self):
        assert default_router(record_key("posts", "p1")) == "posts"
        assert default_router(record_key("users", "u1")) == "users"

    def test_query_keys_route_to_their_collection(self):
        query = Query("articles", {"tags": "example"})
        assert default_router(query.cache_key) == "articles"

    def test_unknown_keys_route_to_default_partition(self):
        assert default_router("something-else") == "__default__"

    def test_partitions_created_lazily(self, partitioned):
        assert partitioned.partition_names() == []
        partitioned.report_read(record_key("posts", "p1"), ttl=10.0)
        partitioned.report_read(record_key("users", "u1"), ttl=10.0)
        assert partitioned.partition_names() == ["posts", "users"]


class TestSingleFilterInterface:
    def test_behaves_like_one_ebf(self, partitioned, clock):
        key = record_key("posts", "p1")
        partitioned.report_read(key, ttl=10.0)
        assert partitioned.report_invalidation(key) is True
        assert partitioned.contains(key)
        assert partitioned.is_stale(key)
        clock.advance(11.0)
        assert not partitioned.contains(key)
        assert len(partitioned) == 0

    def test_len_sums_partitions(self, partitioned):
        for table in ("a", "b", "c"):
            key = record_key(table, "x")
            partitioned.report_read(key, ttl=50.0)
            partitioned.report_invalidation(key)
        assert len(partitioned) == 3

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            PartitionedExpiringBloomFilter(num_bits=0)


class TestAggregation:
    def test_aggregate_filter_is_union_of_partitions(self, partitioned):
        posts_key = record_key("posts", "p1")
        users_key = record_key("users", "u1")
        for key in (posts_key, users_key):
            partitioned.report_read(key, ttl=50.0)
            partitioned.report_invalidation(key)
        aggregate = partitioned.to_flat()
        assert aggregate.contains(posts_key)
        assert aggregate.contains(users_key)

    def test_per_table_filters_are_isolated(self, partitioned):
        posts_key = record_key("posts", "p1")
        partitioned.report_read(posts_key, ttl=50.0)
        partitioned.report_invalidation(posts_key)
        assert partitioned.to_flat_partition("posts").contains(posts_key)
        assert not partitioned.to_flat_partition("users").contains(posts_key)

    def test_statistics_aggregate(self, partitioned):
        for table in ("posts", "users"):
            key = record_key(table, "x")
            partitioned.report_read(key, ttl=50.0)
            partitioned.report_invalidation(key)
        stats = partitioned.statistics()
        assert stats.stale_keys == 2
        assert stats.tracked_keys == 2
        assert stats.reads_reported == 2

    def test_drop_in_replacement_for_server(self, clock):
        """The Quaestor server accepts the partitioned EBF unchanged."""
        from repro.core import QuaestorConfig, QuaestorServer
        from repro.db import Database, Query
        from repro.invalidb import InvaliDBCluster

        database = Database(clock=clock)
        posts = database.create_collection("posts")
        posts.insert({"_id": "p1", "tags": ["example"]})
        partitioned = PartitionedExpiringBloomFilter(num_bits=2048, num_hashes=4, clock=clock)
        server = QuaestorServer(
            database, config=QuaestorConfig(), invalidb=InvaliDBCluster(), ebf=partitioned
        )
        query = Query("posts", {"tags": "example"})
        server.handle_query(query)
        server.handle_update("posts", "p1", {"$set": {"tags": ["other"]}})
        assert server.get_bloom_filter().contains(query.cache_key)
        assert partitioned.partition("posts") is not None
