"""Batch APIs, whole-array bit operations and scheme plumbing of the Bloom stack."""

from __future__ import annotations

import pytest

from repro.bloom import (
    BloomFilter,
    CountingBloomFilter,
    ExpiringBloomFilter,
    SCHEME_BLAKE2,
    SCHEME_FNV,
)
from repro.bloom import hashing
from repro.clock import VirtualClock

KEYS = [f"record:posts/{index}" for index in range(64)]
ABSENT = [f"record:posts/absent-{index}" for index in range(64)]


class TestBatchApis:
    @pytest.mark.parametrize("scheme", [SCHEME_FNV, SCHEME_BLAKE2])
    def test_add_all_equals_repeated_add(self, scheme):
        batch = BloomFilter(2048, 4, hash_scheme=scheme)
        batch.add_all(KEYS)
        single = BloomFilter(2048, 4, hash_scheme=scheme)
        for key in KEYS:
            single.add(key)
        assert batch.to_bytes() == single.to_bytes()
        assert len(batch) == len(single) == len(KEYS)

    @pytest.mark.parametrize("scheme", [SCHEME_FNV, SCHEME_BLAKE2])
    def test_contains_all_equals_repeated_contains(self, scheme):
        bloom = BloomFilter(2048, 4, hash_scheme=scheme)
        bloom.add_all(KEYS)
        probes = KEYS + ABSENT
        assert bloom.contains_all(probes) == [bloom.contains(key) for key in probes]

    def test_counting_batch_apis(self):
        counting = CountingBloomFilter(2048, 4)
        counting.add_all(KEYS)
        assert counting.contains_all(KEYS) == [True] * len(KEYS)
        for key in KEYS:
            assert counting.remove(key)
        assert counting.nonzero_slots() == 0

    def test_expiring_report_read_many_matches_singles(self):
        clock = VirtualClock()
        batch = ExpiringBloomFilter(num_bits=2048, num_hashes=4, clock=clock)
        single = ExpiringBloomFilter(num_bits=2048, num_hashes=4, clock=clock)
        batch.report_read_many(KEYS, ttl=10.0, read_time=0.0)
        for key in KEYS:
            single.report_read(key, ttl=10.0, read_time=0.0)
        for key in KEYS:
            assert batch.cacheable_until(key) == single.cacheable_until(key)
            assert batch.report_invalidation(key, 1.0)
            assert single.report_invalidation(key, 1.0)
        assert batch.to_flat(1.0).to_bytes() == single.to_flat(1.0).to_bytes()

    def test_expiring_report_read_many_rejects_negative_ttl(self):
        ebf = ExpiringBloomFilter(num_bits=256, num_hashes=2)
        with pytest.raises(ValueError):
            ebf.report_read_many(["a"], ttl=-1.0)


class TestWholeArrayOps:
    def test_fill_ratio_matches_per_byte_reference(self):
        bloom = BloomFilter(1024, 4)
        bloom.add_all(KEYS)
        reference = sum(bin(byte).count("1") for byte in bloom.to_bytes())
        assert bloom.fill_ratio() == reference / 1024

    def test_iter_set_bits_ascending_and_complete(self):
        bloom = BloomFilter(512, 3)
        bloom.add_all(KEYS[:10])
        observed = list(bloom.iter_set_bits())
        assert observed == sorted(observed)
        payload = bloom.to_bytes()
        expected = [
            index
            for index in range(512)
            if payload[index >> 3] & (1 << (index & 7))
        ]
        assert observed == expected

    def test_union_matches_per_byte_reference(self):
        left = BloomFilter(1024, 4)
        right = BloomFilter(1024, 4)
        left.add_all(KEYS[:32])
        right.add_all(KEYS[32:])
        merged = left | right
        reference = bytes(a | b for a, b in zip(left.to_bytes(), right.to_bytes()))
        assert merged.to_bytes() == reference

    def test_union_all_matches_pairwise_unions(self):
        filters = []
        for start in range(0, 64, 16):
            bloom = BloomFilter(1024, 4)
            bloom.add_all(KEYS[start : start + 16])
            filters.append(bloom)
        pairwise = filters[0]
        for other in filters[1:]:
            pairwise = pairwise | other
        merged = BloomFilter.union_all(filters)
        assert merged.to_bytes() == pairwise.to_bytes()
        assert len(merged) == 64

    def test_union_all_requires_filters_and_same_geometry(self):
        with pytest.raises(ValueError):
            BloomFilter.union_all([])
        with pytest.raises(ValueError):
            BloomFilter.union_all([BloomFilter(128, 4), BloomFilter(256, 4)])

    def test_union_rejects_mixed_schemes(self):
        legacy = BloomFilter(256, 4, hash_scheme=SCHEME_FNV)
        fast = BloomFilter(256, 4, hash_scheme=SCHEME_BLAKE2)
        with pytest.raises(ValueError):
            legacy.union(fast)


class TestSchemePlumbing:
    def test_counting_fill_ratio_tracks_flat(self):
        counting = CountingBloomFilter(1024, 4)
        counting.add_all(KEYS[:16])
        assert counting.fill_ratio() == counting.to_flat().fill_ratio()

    def test_expiring_fill_ratio_without_copy(self):
        ebf = ExpiringBloomFilter(num_bits=1024, num_hashes=4)
        ebf.report_read("key", ttl=100.0, read_time=0.0)
        assert ebf.report_invalidation("key", 1.0)
        assert ebf.fill_ratio() == ebf.to_flat(1.0).fill_ratio() > 0.0

    def test_legacy_scheme_propagates_through_stack(self):
        ebf = ExpiringBloomFilter(num_bits=1024, num_hashes=4, hash_scheme=SCHEME_FNV)
        ebf.report_read("key", ttl=100.0, read_time=0.0)
        assert ebf.report_invalidation("key", 1.0)
        flat = ebf.to_flat(1.0)
        assert flat.hash_scheme == SCHEME_FNV
        assert flat.wire_version == 1
        assert flat.contains("key")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(128, 4, hash_scheme="md5")
        with pytest.raises(ValueError):
            hashing.hash_pair("key", "md5")

    def test_hash_pair_cache_serves_hits(self):
        hashing.clear_hash_pair_cache()
        hashing.hash_pair("cached-key")
        before = hashing.hash_pair_cache_info().hits
        hashing.hash_pair("cached-key")
        assert hashing.hash_pair_cache_info().hits == before + 1
