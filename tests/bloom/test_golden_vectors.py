"""Golden hash vectors pinning wire compatibility across the hashing rework.

The values below were captured from the pre-blake2 implementation (pure
per-byte FNV-1a).  They guarantee three compatibility properties:

* ``fnv1a_64`` / legacy-scheme ``hash_pair`` / legacy ``positions`` are
  byte-for-byte what they were, so filters serialized before the rework
  deserialize with ``hash_scheme=SCHEME_FNV`` (wire version 1) and answer
  membership exactly as when they were written.
* ``stable_uint64`` / ``mixed_uint64`` are unchanged, so consistent-hash
  ring placement and grid partitioning did not move.
* The blake2 vectors pin the *new* scheme (wire version 2) so any future
  change to it is caught the same way.
"""

from __future__ import annotations

import pytest

from repro.bloom import hashing
from repro.bloom.bloom_filter import BloomFilter

#: key -> (fnv1a_64, mixed_uint64, legacy h2, legacy positions(key, 4, 11680))
#: captured from the pre-rework implementation.
LEGACY_VECTORS = {
    "record:posts/1": (
        5211827933553280589,
        8864720829329768974,
        13288363070606427285,
        [589, 5794, 10999, 4524],
    ),
    "record:posts/42": (
        14819961067862807348,
        13250860115081672949,
        5038151899078560011,
        [1588, 2239, 2890, 3541],
    ),
    "record:users/alice": (
        14440190778667258321,
        9616544398544815375,
        15705419558463796225,
        [8081, 8786, 9491, 10196],
    ),
    'query:{"c":"posts","l":null,"o":0,"q":{"tags":"example"},"s":[]}': (
        10835346583316893828,
        17172030000890905864,
        128178259144712673,
        [2468, 11301, 8454, 5607],
    ),
    "a": (
        12638187200555641996,
        9413272369427828315,
        8691452747775473151,
        [9836, 2187, 6218, 10249],
    ),
    "quaestor": (
        15810328381429036443,
        5400911916018903619,
        1514497912698754391,
        [3643, 9874, 4425, 10656],
    ),
    "key-0": (
        8147957248299270233,
        1734865316076021129,
        6360567615894030191,
        [2873, 10984, 7415, 3846],
    ),
    "": (
        14695981039346656037,
        17280346270528514342,
        9521211207457086693,
        [6597, 8010, 9423, 10836],
    ),
    "unicode-éèü": (
        862559248993790971,
        1295929929781238761,
        13285695350945182119,
        [4091, 3170, 2249, 1328],
    ),
}

#: key -> (h1, h2, positions(key, 4, 11680)) for the blake2 scheme, pinning
#: wire version 2 against future drift.
BLAKE2_VECTORS = {
    "record:posts/1": (
        11330858912190745905,
        17316395185222204361,
        [9585, 4826, 67, 6988],
    ),
    "record:posts/42": (
        6686027711575306086,
        9514964633752832705,
        [166, 7431, 3016, 10281],
    ),
    "record:users/alice": (
        12920567023190652299,
        12981859889237157743,
        [9739, 11002, 585, 1848],
    ),
    'query:{"c":"posts","l":null,"o":0,"q":{"tags":"example"},"s":[]}': (
        11687478497307920600,
        8346702662611760229,
        [3800, 2589, 1378, 167],
    ),
    "a": (2865237616951003007, 3018927179322247551, [10367, 3678, 8669, 1980]),
    "quaestor": (
        18121343791218615870,
        11382520936468759985,
        [9470, 10415, 11360, 625],
    ),
    "key-0": (1740346382425233407, 16023458911895561953, [7967, 10400, 1153, 3586]),
    "": (14620488971855052096, 5642315946650924657, [2976, 5073, 7170, 9267]),
    "unicode-éèü": (
        7537462108870571083,
        10813466631137359989,
        [523, 4352, 8181, 330],
    ),
}

CORPUS = list(LEGACY_VECTORS)

#: ``BloomFilter(512, 4, scheme).add_all(CORPUS).to_bytes().hex()`` per scheme.
#: The FNV payload is what the pre-rework code produced for this corpus.
GOLDEN_PAYLOAD_HEX = {
    hashing.SCHEME_FNV: (
        "00140000800000804022200220000000101e0000400000000000000004800500"
        "00000000200090000006000000008000000000080500000000011e0000000008"
    ),
    hashing.SCHEME_BLAKE2: (
        "8000000084000040000800000002002000100800040000000900000101010044"
        "0000000000002220010002004000008000080000050602000200000100800090"
    ),
}


class TestLegacyVectors:
    @pytest.mark.parametrize("key", CORPUS)
    def test_fnv1a_64_pinned(self, key):
        assert hashing.fnv1a_64(key.encode("utf-8")) == LEGACY_VECTORS[key][0]

    @pytest.mark.parametrize("key", CORPUS)
    def test_stable_and_mixed_uint64_pinned(self, key):
        expected_fnv, expected_mixed, _, _ = LEGACY_VECTORS[key]
        assert hashing.stable_uint64(key) == expected_fnv
        assert hashing.mixed_uint64(key) == expected_mixed

    @pytest.mark.parametrize("key", CORPUS)
    def test_legacy_hash_pair_pinned(self, key):
        expected_fnv, _, expected_h2, _ = LEGACY_VECTORS[key]
        assert hashing.hash_pair(key, hashing.SCHEME_FNV) == (expected_fnv, expected_h2)

    @pytest.mark.parametrize("key", CORPUS)
    def test_legacy_positions_pinned(self, key):
        assert (
            hashing.positions(key, 4, 11680, hashing.SCHEME_FNV)
            == LEGACY_VECTORS[key][3]
        )


class TestBlake2Vectors:
    @pytest.mark.parametrize("key", CORPUS)
    def test_hash_pair_pinned(self, key):
        h1, h2, _ = BLAKE2_VECTORS[key]
        assert hashing.hash_pair(key, hashing.SCHEME_BLAKE2) == (h1, h2)
        # The default scheme is blake2.
        assert hashing.hash_pair(key) == (h1, h2)

    @pytest.mark.parametrize("key", CORPUS)
    def test_positions_pinned(self, key):
        assert hashing.positions(key, 4, 11680) == BLAKE2_VECTORS[key][2]


class TestSerializedPayloads:
    @pytest.mark.parametrize("scheme", sorted(GOLDEN_PAYLOAD_HEX))
    def test_payload_byte_identity(self, scheme):
        """Building the corpus filter reproduces the pinned payload exactly."""
        bloom = BloomFilter(512, 4, hash_scheme=scheme)
        bloom.add_all(CORPUS)
        assert bloom.to_bytes().hex() == GOLDEN_PAYLOAD_HEX[scheme]

    def test_batch_and_single_add_set_identical_bits(self):
        for scheme in GOLDEN_PAYLOAD_HEX:
            single = BloomFilter(512, 4, hash_scheme=scheme)
            for key in CORPUS:
                single.add(key)
            assert single.to_bytes().hex() == GOLDEN_PAYLOAD_HEX[scheme]

    def test_legacy_payload_roundtrip_membership(self):
        """A pre-rework payload still answers membership when loaded as v1."""
        payload = bytes.fromhex(GOLDEN_PAYLOAD_HEX[hashing.SCHEME_FNV])
        restored = BloomFilter.from_bytes(payload, 512, 4, wire_version=1)
        assert restored.hash_scheme == hashing.SCHEME_FNV
        assert all(restored.contains_all(CORPUS))

    def test_wire_version_mapping(self):
        assert hashing.scheme_for_wire_version(1) == hashing.SCHEME_FNV
        assert hashing.scheme_for_wire_version(2) == hashing.SCHEME_BLAKE2
        assert BloomFilter(64, 2, hashing.SCHEME_FNV).wire_version == 1
        assert BloomFilter(64, 2).wire_version == 2
        with pytest.raises(ValueError):
            hashing.scheme_for_wire_version(99)
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(b"\x00" * 8, 64, 2, hash_scheme="fnv", wire_version=2)

    def test_schemes_are_not_interchangeable(self):
        """Loading v1 bits under the v2 scheme must not claim membership.

        This is exactly why the geometry is versioned: the bit pattern only
        means something under the scheme that produced it.
        """
        payload = bytes.fromhex(GOLDEN_PAYLOAD_HEX[hashing.SCHEME_FNV])
        wrong = BloomFilter.from_bytes(payload, 512, 4, wire_version=2)
        assert not all(wrong.contains_all(CORPUS))
