"""Tests for the Expiring Bloom Filter (the paper's core data structure)."""

from __future__ import annotations

import pytest

from repro.bloom import ExpiringBloomFilter
from repro.clock import VirtualClock


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture
def ebf(clock: VirtualClock) -> ExpiringBloomFilter:
    return ExpiringBloomFilter(num_bits=2048, num_hashes=4, clock=clock)


class TestInvalidation:
    def test_invalidation_within_ttl_marks_stale(self, ebf, clock):
        ebf.report_read("query:q1", ttl=10.0)
        clock.advance(2.0)
        assert ebf.report_invalidation("query:q1") is True
        assert ebf.is_stale("query:q1")
        assert ebf.contains("query:q1")

    def test_invalidation_after_ttl_is_ignored(self, ebf, clock):
        ebf.report_read("query:q1", ttl=5.0)
        clock.advance(6.0)
        assert ebf.report_invalidation("query:q1") is False
        assert not ebf.contains("query:q1")

    def test_unknown_key_invalidation_is_ignored(self, ebf):
        assert ebf.report_invalidation("query:never-read") is False
        assert len(ebf) == 0

    def test_stale_entry_expires_with_highest_ttl(self, ebf, clock):
        """A stale key leaves the filter once the highest issued TTL expires."""
        ebf.report_read("query:q1", ttl=10.0)
        clock.advance(1.0)
        ebf.report_invalidation("query:q1")
        clock.advance(8.0)
        assert ebf.contains("query:q1")  # 9 s: still within the 10 s TTL window
        clock.advance(2.0)
        assert not ebf.contains("query:q1")  # 11 s: expired everywhere

    def test_new_read_extends_stale_period(self, ebf, clock):
        """Re-reading a stale key with a longer TTL keeps it in the filter longer."""
        ebf.report_read("query:q1", ttl=5.0)
        clock.advance(1.0)
        ebf.report_invalidation("query:q1")
        clock.advance(1.0)
        ebf.report_read("query:q1", ttl=20.0)
        clock.advance(10.0)
        assert ebf.contains("query:q1")

    def test_repeated_invalidations_do_not_double_count(self, ebf, clock):
        ebf.report_read("query:q1", ttl=10.0)
        ebf.report_invalidation("query:q1")
        ebf.report_invalidation("query:q1")
        clock.advance(11.0)
        assert not ebf.contains("query:q1")
        assert len(ebf) == 0

    def test_negative_ttl_rejected(self, ebf):
        with pytest.raises(ValueError):
            ebf.report_read("key", ttl=-1.0)


class TestExpiry:
    def test_expire_returns_number_removed(self, ebf, clock):
        for index in range(5):
            ebf.report_read(f"key-{index}", ttl=3.0)
            ebf.report_invalidation(f"key-{index}")
        clock.advance(4.0)
        assert ebf.expire() == 5
        assert len(ebf) == 0

    def test_len_counts_stale_keys_only(self, ebf, clock):
        ebf.report_read("fresh", ttl=100.0)
        ebf.report_read("stale", ttl=100.0)
        ebf.report_invalidation("stale")
        assert len(ebf) == 1

    def test_cacheable_until_tracks_highest_ttl(self, ebf, clock):
        ebf.report_read("key", ttl=5.0)
        ebf.report_read("key", ttl=2.0)
        assert ebf.cacheable_until("key") == pytest.approx(5.0)
        ebf.report_read("key", ttl=30.0)
        assert ebf.cacheable_until("key") == pytest.approx(30.0)


class TestFlatSnapshot:
    def test_flat_copy_reflects_stale_set(self, ebf, clock):
        ebf.report_read("query:stale", ttl=10.0)
        ebf.report_read("query:fresh", ttl=10.0)
        ebf.report_invalidation("query:stale")
        flat = ebf.to_flat()
        assert flat.contains("query:stale")
        assert not flat.contains("query:fresh")

    def test_flat_copy_is_immutable_snapshot(self, ebf):
        flat = ebf.to_flat()
        ebf.report_read("k", ttl=10.0)
        ebf.report_invalidation("k")
        assert not flat.contains("k")

    def test_statistics_snapshot(self, ebf, clock):
        ebf.report_read("a", ttl=10.0)
        ebf.report_read("b", ttl=10.0)
        ebf.report_invalidation("a")
        stats = ebf.statistics()
        assert stats.tracked_keys == 2
        assert stats.stale_keys == 1
        assert stats.reads_reported == 2
        assert stats.invalidations_reported == 1


class TestDeltaAtomicity:
    def test_theorem1_no_stale_read_beyond_delta(self, clock):
        """Simulate Theorem 1: a client using a filter of age Delta never
        unknowingly reads data that became stale more than Delta ago."""
        ebf = ExpiringBloomFilter(num_bits=4096, num_hashes=4, clock=clock)
        # Server: query cached at t=0 with TTL 60.
        ebf.report_read("query:q", ttl=60.0)
        # Client fetches the flat filter at t=5 (its Delta reference point).
        clock.advance(5.0)
        snapshot_t5 = ebf.to_flat()
        # Write at t=10 invalidates the query.
        clock.advance(5.0)
        ebf.report_invalidation("query:q")
        # A client still using the t=5 snapshot cannot detect the staleness --
        # but the data is at most (now - t_write) stale, and any client that
        # refreshes its snapshot now sees the staleness flag immediately.
        clock.advance(1.0)
        fresh_snapshot = ebf.to_flat()
        assert not snapshot_t5.contains("query:q")
        assert fresh_snapshot.contains("query:q")
