"""Tests for the Counting Bloom filter."""

from __future__ import annotations

import pytest

from repro.bloom import CountingBloomFilter


@pytest.fixture
def counting() -> CountingBloomFilter:
    return CountingBloomFilter(num_bits=512, num_hashes=4)


class TestAddRemove:
    def test_add_then_contains(self, counting: CountingBloomFilter):
        counting.add("query:a")
        assert counting.contains("query:a")
        assert len(counting) == 1

    def test_remove_clears_membership(self, counting: CountingBloomFilter):
        counting.add("query:a")
        assert counting.remove("query:a") is True
        assert not counting.contains("query:a")
        assert len(counting) == 0

    def test_remove_absent_key_is_noop(self, counting: CountingBloomFilter):
        counting.add("present")
        assert counting.remove("never-added-key-xyz") is False
        assert counting.contains("present")

    def test_double_add_requires_double_remove(self, counting: CountingBloomFilter):
        counting.add("key")
        counting.add("key")
        counting.remove("key")
        assert counting.contains("key")
        counting.remove("key")
        assert not counting.contains("key")

    def test_removing_one_key_keeps_others(self, counting: CountingBloomFilter):
        keys = [f"key-{index}" for index in range(50)]
        for key in keys:
            counting.add(key)
        counting.remove("key-0")
        assert all(counting.contains(key) for key in keys[1:])

    def test_clear_resets_everything(self, counting: CountingBloomFilter):
        for index in range(10):
            counting.add(f"key-{index}")
        counting.clear()
        assert len(counting) == 0
        assert counting.nonzero_slots() == 0
        assert not counting.contains("key-0")


class TestCounters:
    def test_counter_values_track_additions(self, counting: CountingBloomFilter):
        counting.add("key")
        nonzero = [
            position for position in range(counting.num_bits) if counting.counter(position) > 0
        ]
        assert 1 <= len(nonzero) <= counting.num_hashes
        assert all(counting.counter(position) == 1 for position in nonzero)

    def test_counter_out_of_range(self, counting: CountingBloomFilter):
        with pytest.raises(IndexError):
            counting.counter(counting.num_bits)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(0, 1)
        with pytest.raises(ValueError):
            CountingBloomFilter(10, 0)


class TestFlatSnapshot:
    def test_flat_snapshot_matches_membership(self, counting: CountingBloomFilter):
        for index in range(25):
            counting.add(f"key-{index}")
        flat = counting.to_flat()
        assert all(flat.contains(f"key-{index}") for index in range(25))

    def test_flat_snapshot_updates_on_removal(self, counting: CountingBloomFilter):
        counting.add("ephemeral")
        counting.remove("ephemeral")
        assert not counting.to_flat().contains("ephemeral")

    def test_flat_snapshot_is_a_copy(self, counting: CountingBloomFilter):
        snapshot = counting.to_flat()
        counting.add("added-later")
        assert not snapshot.contains("added-later")

    def test_incremental_snapshot_equals_rebuild(self, counting: CountingBloomFilter):
        """The incrementally maintained flat filter matches a full rebuild."""
        from repro.bloom import BloomFilter

        keys = [f"key-{index}" for index in range(60)]
        for key in keys:
            counting.add(key)
        for key in keys[::3]:
            counting.remove(key)
        remaining = [key for index, key in enumerate(keys) if index % 3 != 0]
        rebuilt = BloomFilter.from_keys(remaining, counting.num_bits, counting.num_hashes)
        assert counting.to_flat().to_bytes() == rebuilt.to_bytes()
