"""Tests for Cache-Control parsing, formatting and TTL selection."""

from __future__ import annotations

import pytest

from repro.rest import CacheControl


class TestConstruction:
    def test_cacheable_defaults_shared_ttl_to_ttl(self):
        directives = CacheControl.cacheable(30.0)
        assert directives.max_age == 30.0
        assert directives.s_maxage == 30.0

    def test_cacheable_with_separate_shared_ttl(self):
        directives = CacheControl.cacheable(30.0, shared_ttl=90.0)
        assert directives.ttl_for(shared=False) == 30.0
        assert directives.ttl_for(shared=True) == 90.0

    def test_uncacheable(self):
        directives = CacheControl.uncacheable()
        assert not directives.is_cacheable
        assert directives.ttl_for(shared=True) == 0.0

    def test_negative_ages_rejected(self):
        with pytest.raises(ValueError):
            CacheControl(max_age=-1)
        with pytest.raises(ValueError):
            CacheControl(s_maxage=-1)


class TestTtlSelection:
    def test_shared_cache_prefers_s_maxage(self):
        directives = CacheControl(max_age=10, s_maxage=60)
        assert directives.ttl_for(shared=True) == 60
        assert directives.ttl_for(shared=False) == 10

    def test_shared_cache_falls_back_to_max_age(self):
        directives = CacheControl(max_age=10)
        assert directives.ttl_for(shared=True) == 10

    def test_no_directives_means_zero_ttl(self):
        assert CacheControl().ttl_for(shared=False) == 0.0


class TestSerialisation:
    def test_header_round_trip(self):
        original = CacheControl(max_age=30, s_maxage=90, must_revalidate=True)
        parsed = CacheControl.from_header(original.to_header())
        assert parsed.max_age == 30
        assert parsed.s_maxage == 90
        assert parsed.must_revalidate

    def test_uncacheable_header(self):
        header = CacheControl.uncacheable().to_header()
        assert "no-store" in header
        assert "no-cache" in header

    def test_parse_ignores_unknown_directives(self):
        parsed = CacheControl.from_header("public, max-age=15, immutable")
        assert parsed.max_age == 15
        assert parsed.is_cacheable

    def test_parse_empty_header(self):
        parsed = CacheControl.from_header("")
        assert parsed.max_age is None
        assert not parsed.no_cache
