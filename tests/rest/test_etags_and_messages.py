"""Tests for Etags and the request/response model."""

from __future__ import annotations

from repro import perf
from repro.rest import CacheControl, Request, Response, StatusCode, etag_for, weak_compare
from repro.rest.etags import etag_for_result, etag_for_version


class TestEtags:
    def test_same_payload_same_etag(self):
        assert etag_for({"a": 1, "b": 2}) == etag_for({"b": 2, "a": 1})

    def test_different_payload_different_etag(self):
        assert etag_for({"a": 1}) != etag_for({"a": 2})

    def test_version_etag_changes_with_version(self):
        first = etag_for_version("posts", "p1", 1)
        second = etag_for_version("posts", "p1", 2)
        assert first != second

    def test_version_etag_is_scoped_to_record(self):
        assert etag_for_version("posts", "p1", 1) != etag_for_version("posts", "p2", 1)

    def test_memoized_etags_match_uncached_rendering(self):
        """The lru-cached fast paths render the same strings as the legacy
        (per-call) rendering used before the hot-path overhaul."""
        versions = {"p2": 7, "p1": 3}
        with perf.legacy_hot_paths():
            legacy_version = etag_for_version("posts", "p1", 3)
            legacy_result = etag_for_result(versions)
        assert etag_for_version("posts", "p1", 3) == legacy_version
        assert etag_for_result(versions) == legacy_result
        assert etag_for_result(dict(versions)) == legacy_result  # key order irrelevant
        assert legacy_result == etag_for({"ids": sorted(versions), "versions": versions})

    def test_result_etag_changes_with_membership_and_versions(self):
        base = etag_for_result({"p1": 1, "p2": 1})
        assert etag_for_result({"p1": 1, "p2": 2}) != base
        assert etag_for_result({"p1": 1}) != base

    def test_weak_compare_ignores_weak_prefix(self):
        strong = etag_for({"a": 1})
        assert weak_compare(strong, "W/" + strong)
        assert not weak_compare(strong, etag_for({"a": 2}))


class TestRequest:
    def test_is_read(self):
        assert Request("GET", "/db/posts/p1").is_read
        assert Request("HEAD", "/db/posts/p1").is_read
        assert not Request("PUT", "/db/posts/p1").is_read

    def test_method_normalised_once_at_construction(self):
        """Lower-case methods are upper-cased by __post_init__, so is_read is
        a plain membership test (no .upper() per access)."""
        request = Request("get", "/db/posts/p1")
        assert request.method == "GET"
        assert request.is_read
        assert Request("head", "/db/posts/p1").is_read
        assert not Request("put", "/db/posts/p1").is_read
        assert Request("delete", "/db/posts/p1").method == "DELETE"

    def test_with_revalidation_adds_header(self):
        request = Request("GET", "/db/posts/p1")
        conditional = request.with_revalidation('"abc"')
        assert conditional.if_none_match == '"abc"'
        assert request.if_none_match is None  # original untouched

    def test_with_revalidation_preserves_existing_headers(self):
        request = Request("GET", "/db/posts/p1", headers={"Accept": "application/json"})
        conditional = request.with_revalidation('"abc"')
        assert conditional.headers == {"Accept": "application/json", "If-None-Match": '"abc"'}
        assert request.headers == {"Accept": "application/json"}  # no aliasing
        conditional.headers["X"] = "y"
        assert "X" not in request.headers


class TestResponse:
    def test_ok_is_cacheable(self):
        response = Response.ok({"a": 1}, ttl=30.0)
        assert response.is_cacheable
        assert response.ttl_for(shared=False) == 30.0

    def test_ok_with_separate_shared_ttl(self):
        response = Response.ok({"a": 1}, ttl=30.0, shared_ttl=90.0)
        assert response.ttl_for(shared=True) == 90.0

    def test_uncacheable_response(self):
        response = Response.uncacheable({"a": 1})
        assert not response.is_cacheable
        assert response.ttl_for(shared=True) == 0.0

    def test_not_found_is_not_cacheable(self):
        response = Response(
            status=StatusCode.NOT_FOUND, body=None, cache_control=CacheControl.cacheable(30)
        )
        assert not response.is_cacheable

    def test_not_modified_response(self):
        response = Response.not_modified_response('"etag"', ttl=10.0)
        assert response.not_modified
        assert response.body is None
        assert response.etag == '"etag"'
