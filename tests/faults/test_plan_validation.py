"""Construction-time fault-plan validation and the legible repr timeline."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, UnsupportedFaultError
from repro.faults import FaultAction, FaultEvent, FaultPlan


class TestTargetGrammar:
    @pytest.mark.parametrize("target", ("shard:0", "shard:12", "s0:n0", "s3:n11"))
    def test_valid_targets(self, target):
        FaultEvent(1.0, FaultAction.CRASH, target)  # does not raise

    @pytest.mark.parametrize(
        "target",
        ("", "shard", "shard:", "shard:x", "shard:-1", "s0", "s0:n", "n0:s0",
         "s0:n0:x", "node-3", "Shard:0", " shard:0"),
    )
    def test_malformed_targets_fail_at_construction(self, target):
        with pytest.raises(UnsupportedFaultError):
            FaultEvent(1.0, FaultAction.CRASH, target)

    def test_malformed_peer_fails_at_construction(self):
        with pytest.raises(UnsupportedFaultError):
            FaultEvent(1.0, FaultAction.PARTITION, "s0:n0", peer="bogus")

    def test_unsupported_fault_error_is_a_configuration_error(self):
        # Existing except ConfigurationError sites keep catching it.
        assert issubclass(UnsupportedFaultError, ConfigurationError)


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(-0.1, FaultAction.CRASH, "shard:0")

    def test_partition_requires_a_peer(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(1.0, FaultAction.PARTITION, "s0:n0")

    def test_gray_actions_require_a_magnitude(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(1.0, FaultAction.SLOW_SHARD, "shard:0")
        with pytest.raises(ConfigurationError):
            FaultEvent(1.0, FaultAction.FLAKY_SHARD, "shard:0")

    def test_gray_magnitude_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(1.0, FaultAction.SLOW_SHARD, "shard:0", magnitude=0.9)
        with pytest.raises(ConfigurationError):
            FaultEvent(1.0, FaultAction.FLAKY_SHARD, "shard:0", magnitude=0.0)
        with pytest.raises(ConfigurationError):
            FaultEvent(1.0, FaultAction.FLAKY_SHARD, "shard:0", magnitude=1.5)
        FaultEvent(1.0, FaultAction.SLOW_SHARD, "shard:0", magnitude=1.0)
        FaultEvent(1.0, FaultAction.FLAKY_SHARD, "shard:0", magnitude=1.0)

    def test_non_gray_actions_must_not_carry_a_magnitude(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(1.0, FaultAction.CRASH, "shard:0", magnitude=2.0)
        with pytest.raises(ConfigurationError):
            FaultEvent(1.0, FaultAction.RESTORE, "shard:0", magnitude=2.0)


class TestReprTimeline:
    def test_repr_prints_one_legible_line_per_event(self):
        plan = FaultPlan(
            events=[
                FaultEvent(5.0, FaultAction.SLOW_SHARD, "shard:0", magnitude=4.0),
                FaultEvent(7.5, FaultAction.FLAKY_SHARD, "shard:1", magnitude=0.25),
                FaultEvent(10.0, FaultAction.PARTITION, "s0:n0", peer="s0:n1"),
                FaultEvent(25.0, FaultAction.RESTORE, "shard:0"),
            ],
            name="demo",
        )
        text = repr(plan)
        assert "FaultPlan(name='demo', events=4)" in text
        assert "t=5.00s slow_shard shard:0 x4" in text
        assert "t=7.50s flaky_shard shard:1 p=0.25" in text
        assert "t=10.00s partition s0:n0 peer=s0:n1" in text
        assert "t=25.00s restore shard:0" in text
        # One line per event, in time order.
        lines = text.splitlines()
        assert len(lines) == 5
        assert lines[1].strip().startswith("t=5.00s")

    def test_empty_plan_repr(self):
        assert repr(FaultPlan(name="empty")) == "FaultPlan(name='empty', events=0)"

    def test_events_sort_by_time_at_construction(self):
        plan = FaultPlan(
            events=[
                FaultEvent(9.0, FaultAction.RECOVER, "shard:0"),
                FaultEvent(1.0, FaultAction.CRASH, "shard:0"),
            ]
        )
        assert [event.time for event in plan.events] == [1.0, 9.0]

    def test_same_time_events_sort_stably_by_target_then_action(self):
        # Construction order must not leak into the canonical timeline:
        # same-instant events order by (time, target, action) so two seeded
        # plans with identical events always repr identically.
        events = [
            FaultEvent(5.0, FaultAction.SLOW_SHARD, "shard:1", magnitude=4.0),
            FaultEvent(5.0, FaultAction.CRASH, "shard:0"),
            FaultEvent(5.0, FaultAction.FLAKY_SHARD, "shard:1", magnitude=0.2),
        ]
        forward = FaultPlan(events=events)
        backward = FaultPlan(events=list(reversed(events)))
        expected = [
            ("shard:0", FaultAction.CRASH),
            ("shard:1", FaultAction.FLAKY_SHARD),
            ("shard:1", FaultAction.SLOW_SHARD),
        ]
        assert [(e.target, e.action) for e in forward.events] == expected
        assert forward.events == backward.events
        assert repr(forward) == repr(backward)


class TestBuilders:
    def test_brownout_builder_timeline(self):
        plan = FaultPlan.brownout(shard=1, at=2.0, recover_at=8.0, slow_factor=3.0, drop_rate=0.2)
        assert plan.name == "brownout/shard=1"
        actions = [event.action for event in plan.events]
        # Canonical tie order at the onset instant: flaky_shard < slow_shard
        # (sorted by action name; the gray toggles commute).
        assert actions == [FaultAction.FLAKY_SHARD, FaultAction.SLOW_SHARD, FaultAction.RESTORE]
        assert all(event.target == "shard:1" for event in plan.events)
        assert plan.events[0].magnitude == pytest.approx(0.2)
        assert plan.events[1].magnitude == pytest.approx(3.0)
        assert plan.events[-1].time == pytest.approx(8.0)

    def test_brownout_without_drops_skips_the_flaky_event(self):
        plan = FaultPlan.brownout(drop_rate=0.0)
        assert [event.action for event in plan.events] == [
            FaultAction.SLOW_SHARD,
            FaultAction.RESTORE,
        ]

    def test_flaky_builder(self):
        plan = FaultPlan.flaky(shard=0, at=1.0, recover_at=4.0, drop_rate=0.5)
        assert plan.name == "flaky/shard=0"
        assert [event.action for event in plan.events] == [
            FaultAction.FLAKY_SHARD,
            FaultAction.RESTORE,
        ]

    def test_builders_validate_the_window(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.brownout(at=5.0, recover_at=5.0)
        with pytest.raises(ConfigurationError):
            FaultPlan.flaky(at=5.0, recover_at=2.0)


class TestSplitByShard:
    def test_gray_events_route_with_their_magnitude(self):
        plan = FaultPlan(
            events=[
                FaultEvent(1.0, FaultAction.SLOW_SHARD, "shard:0", magnitude=4.0),
                FaultEvent(1.0, FaultAction.FLAKY_SHARD, "shard:1", magnitude=0.3),
                FaultEvent(2.0, FaultAction.RESTORE, "shard:1"),
            ]
        )
        first, second = plan.split_by_shard(2, 1)
        assert [event.action for event in first.events] == [FaultAction.SLOW_SHARD]
        assert first.events[0].magnitude == pytest.approx(4.0)
        assert [event.action for event in second.events] == [
            FaultAction.FLAKY_SHARD,
            FaultAction.RESTORE,
        ]
        # Targets are rewritten into local shard numbering.
        assert second.events[0].target == "shard:0"
        assert second.events[0].magnitude == pytest.approx(0.3)
