"""Tests for the publish/subscribe broker."""

from __future__ import annotations

from repro.kvstore import PubSubBroker


class TestPubSub:
    def test_delivers_to_subscriber(self):
        broker = PubSubBroker()
        received = []
        broker.subscribe("invalidations", lambda channel, message: received.append(message))
        count = broker.publish("invalidations", {"key": "query:q1"})
        assert count == 1
        assert received == [{"key": "query:q1"}]

    def test_multiple_subscribers_all_receive(self):
        broker = PubSubBroker()
        received_a, received_b = [], []
        broker.subscribe("channel", lambda _c, m: received_a.append(m))
        broker.subscribe("channel", lambda _c, m: received_b.append(m))
        assert broker.publish("channel", "message") == 2
        assert received_a == received_b == ["message"]

    def test_no_delivery_across_channels(self):
        broker = PubSubBroker()
        received = []
        broker.subscribe("a", lambda _c, m: received.append(m))
        assert broker.publish("b", "message") == 0
        assert received == []

    def test_unsubscribe_stops_delivery(self):
        broker = PubSubBroker()
        received = []
        subscription = broker.subscribe("channel", lambda _c, m: received.append(m))
        subscription.unsubscribe()
        broker.publish("channel", "message")
        assert received == []
        assert broker.subscriber_count("channel") == 0

    def test_unsubscribe_is_idempotent(self):
        broker = PubSubBroker()
        subscription = broker.subscribe("channel", lambda _c, m: None)
        subscription.unsubscribe()
        subscription.unsubscribe()
        assert not subscription.active

    def test_in_order_delivery(self):
        broker = PubSubBroker()
        received = []
        broker.subscribe("channel", lambda _c, m: received.append(m))
        for index in range(10):
            broker.publish("channel", index)
        assert received == list(range(10))

    def test_counters(self):
        broker = PubSubBroker()
        broker.subscribe("channel", lambda _c, m: None)
        broker.publish("channel", "x")
        broker.publish("other", "y")
        assert broker.published == 2
        assert broker.delivered == 1
