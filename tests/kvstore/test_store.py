"""Tests for the Redis-like key-value store."""

from __future__ import annotations

import pytest

from repro.clock import VirtualClock
from repro.kvstore import KeyValueStore


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture
def store(clock: VirtualClock) -> KeyValueStore:
    return KeyValueStore(clock=clock)


class TestStrings:
    def test_set_get(self, store):
        store.set("key", "value")
        assert store.get("key") == "value"

    def test_get_default(self, store):
        assert store.get("missing") is None
        assert store.get("missing", "fallback") == "fallback"

    def test_delete(self, store):
        store.set("key", 1)
        assert store.delete("key") is True
        assert store.delete("key") is False
        assert not store.exists("key")

    def test_incr_by(self, store):
        assert store.incr_by("counter") == 1
        assert store.incr_by("counter", 5) == 6
        assert store.incr_by("counter", -2) == 4

    def test_incr_by_rejects_non_integer(self, store):
        store.set("key", "text")
        with pytest.raises(TypeError):
            store.incr_by("key")


class TestHashes:
    def test_hset_hget(self, store):
        store.hset("hash", "field", 42)
        assert store.hget("hash", "field") == 42
        assert store.hget("hash", "missing", 0) == 0

    def test_hgetall_returns_copy(self, store):
        store.hset("hash", "a", 1)
        snapshot = store.hgetall("hash")
        snapshot["b"] = 2
        assert store.hgetall("hash") == {"a": 1}

    def test_hdel(self, store):
        store.hset("hash", "a", 1)
        assert store.hdel("hash", "a") is True
        assert store.hdel("hash", "a") is False
        assert store.hlen("hash") == 0

    def test_hincrby_removes_zero_fields(self, store):
        store.hincrby("counters", "slot", 2)
        store.hincrby("counters", "slot", -2)
        assert store.hget("counters", "slot", 0) == 0
        assert store.hlen("counters") == 0

    def test_hincrby_rejects_non_integer(self, store):
        store.hset("hash", "field", "text")
        with pytest.raises(TypeError):
            store.hincrby("hash", "field")


class TestSortedSets:
    def test_zadd_zscore(self, store):
        store.zadd("zset", "member", 3.5)
        assert store.zscore("zset", "member") == 3.5
        assert store.zscore("zset", "missing") is None

    def test_zrangebyscore_ordering(self, store):
        store.zadd("zset", "c", 3.0)
        store.zadd("zset", "a", 1.0)
        store.zadd("zset", "b", 2.0)
        members = store.zrangebyscore("zset", 1.0, 2.5)
        assert members == [("a", 1.0), ("b", 2.0)]

    def test_zremrangebyscore(self, store):
        for index in range(5):
            store.zadd("zset", f"m{index}", float(index))
        removed = store.zremrangebyscore("zset", 0.0, 2.0)
        assert removed == 3
        assert store.zcard("zset") == 2

    def test_zrem(self, store):
        store.zadd("zset", "member", 1.0)
        assert store.zrem("zset", "member") is True
        assert store.zrem("zset", "member") is False
        assert store.zcard("zset") == 0


class TestExpiration:
    def test_ttl_expires_keys(self, store, clock):
        store.set("key", "value", ttl=5.0)
        assert store.get("key") == "value"
        clock.advance(6.0)
        assert store.get("key") is None
        assert not store.exists("key")

    def test_expire_on_missing_key(self, store):
        assert store.expire("missing", 10.0) is False

    def test_ttl_query(self, store, clock):
        store.set("key", "value", ttl=10.0)
        clock.advance(4.0)
        assert store.ttl("key") == pytest.approx(6.0)
        assert store.ttl("persistent-missing") is None

    def test_set_without_ttl_clears_previous_ttl(self, store, clock):
        store.set("key", "v1", ttl=1.0)
        store.set("key", "v2")
        clock.advance(5.0)
        assert store.get("key") == "v2"

    def test_expire_rejects_negative_ttl(self, store):
        store.set("key", 1)
        with pytest.raises(ValueError):
            store.expire("key", -1.0)


class TestAdministration:
    def test_keys_lists_all_types(self, store):
        store.set("string", 1)
        store.hset("hash", "f", 1)
        store.zadd("zset", "m", 1.0)
        assert set(store.keys()) == {"string", "hash", "zset"}
        assert len(store) == 3

    def test_flush(self, store):
        store.set("a", 1)
        store.hset("b", "f", 1)
        store.flush()
        assert len(store) == 0

    def test_operation_counter_increments(self, store):
        before = store.operations
        store.set("a", 1)
        store.get("a")
        assert store.operations == before + 2
