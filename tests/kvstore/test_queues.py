"""Tests for the bounded message queues."""

from __future__ import annotations

import pytest

from repro.kvstore import MessageQueue


class TestMessageQueue:
    def test_fifo_order(self):
        queue = MessageQueue("test")
        queue.offer("a")
        queue.offer("b")
        assert queue.poll() == "a"
        assert queue.poll() == "b"
        assert queue.poll() is None

    def test_bounded_queue_drops_overflow(self):
        queue = MessageQueue("bounded", capacity=2)
        assert queue.offer(1) is True
        assert queue.offer(2) is True
        assert queue.offer(3) is False
        assert len(queue) == 2
        assert queue.dropped == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MessageQueue("bad", capacity=0)

    def test_drain_all(self):
        queue = MessageQueue("test")
        queue.offer_all(range(5))
        assert queue.drain() == [0, 1, 2, 3, 4]
        assert len(queue) == 0

    def test_drain_limited(self):
        queue = MessageQueue("test")
        queue.offer_all(range(5))
        assert queue.drain(2) == [0, 1]
        assert len(queue) == 3

    def test_peek_does_not_remove(self):
        queue = MessageQueue("test")
        queue.offer("item")
        assert queue.peek() == "item"
        assert len(queue) == 1

    def test_counters(self):
        queue = MessageQueue("test", capacity=1)
        queue.offer("a")
        queue.offer("b")
        queue.poll()
        assert queue.offered == 2
        assert queue.accepted == 1
        assert queue.dropped == 1
        assert queue.consumed == 1

    def test_clear_and_bool(self):
        queue = MessageQueue("test")
        assert not queue
        queue.offer("item")
        assert queue
        queue.clear()
        assert not queue
