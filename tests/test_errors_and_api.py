"""Tests for the exception hierarchy and the top-level package API."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestExceptionHierarchy:
    def test_all_errors_derive_from_quaestor_error(self):
        error_types = [
            errors.InvalidQueryError,
            errors.UnsupportedOperationError,
            errors.DocumentNotFoundError,
            errors.DuplicateKeyError,
            errors.CollectionNotFoundError,
            errors.CapacityExceededError,
            errors.TransactionAbortedError,
            errors.StalenessBoundViolatedError,
            errors.CacheCoherenceError,
            errors.ConfigurationError,
        ]
        for error_type in error_types:
            assert issubclass(error_type, errors.QuaestorError)
            assert issubclass(error_type, Exception)

    def test_errors_carry_messages(self):
        with pytest.raises(errors.InvalidQueryError, match="bad operator"):
            raise errors.InvalidQueryError("bad operator")

    def test_catching_the_base_class_catches_everything(self):
        with pytest.raises(errors.QuaestorError):
            raise errors.TransactionAbortedError("conflict")


class TestTopLevelApi:
    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_clocks_re_exported(self):
        assert repro.VirtualClock is not None
        assert repro.SystemClock is not None
        clock = repro.VirtualClock()
        clock.advance(1.0)
        assert clock.now() == 1.0

    def test_public_subpackages_importable(self):
        import repro.benchmarks
        import repro.bloom
        import repro.caching
        import repro.client
        import repro.core
        import repro.db
        import repro.invalidb
        import repro.kvstore
        import repro.metrics
        import repro.rest
        import repro.simulation
        import repro.ttl
        import repro.workloads

        assert repro.core.QuaestorServer is not None
        assert repro.client.QuaestorClient is not None
        assert repro.simulation.Simulator is not None

    def test_all_lists_are_consistent(self):
        import repro.bloom
        import repro.caching
        import repro.client
        import repro.core

        for module in (repro, repro.bloom, repro.caching, repro.client, repro.core):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"
