"""Integration tests of the invalidation pipeline's correctness.

The key safety property: whenever a write changes the result of a registered
query, the query must end up flagged in the Expiring Bloom Filter and purged
from the CDN before the change could otherwise go unnoticed.  These tests
drive randomized write sequences through the full server and cross-check the
flagged set against a brute-force re-execution of every query.
"""

from __future__ import annotations

import random

import pytest

from repro.caching import InvalidationCache
from repro.core import QuaestorConfig, QuaestorServer
from repro.db import Database, Query
from repro.invalidb import InvaliDBCluster


@pytest.fixture
def world(clock):
    database = Database(clock=clock)
    items = database.create_collection("items")
    items.create_index("category")
    for index in range(60):
        items.insert({"_id": f"i{index}", "category": index % 6, "price": index, "stock": 10})
    server = QuaestorServer(
        database, config=QuaestorConfig(), invalidb=InvaliDBCluster(matching_nodes=4)
    )
    cdn = InvalidationCache("cdn", clock)
    server.register_purge_target(cdn)
    queries = [Query("items", {"category": value}) for value in range(6)]
    queries.append(Query("items", {"price": {"$gte": 40}}))
    queries.append(Query("items", {"stock": {"$lt": 5}}))
    return {"database": database, "server": server, "cdn": cdn, "queries": queries}


def snapshot_results(database, queries):
    return {query.cache_key: {doc["_id"] for doc in database.find(query)} for query in queries}


class TestInvalidationCompleteness:
    def test_every_result_change_is_flagged(self, world, clock):
        """No missed invalidations under a randomized update sequence."""
        database, server, queries = world["database"], world["server"], world["queries"]
        for query in queries:
            server.handle_query(query)
        before = snapshot_results(database, queries)

        rng = random.Random(42)
        for step in range(120):
            clock.advance(0.05)
            document_id = f"i{rng.randrange(60)}"
            choice = rng.random()
            if choice < 0.4:
                server.handle_update("items", document_id, {"$set": {"category": rng.randrange(6)}})
            elif choice < 0.7:
                server.handle_update("items", document_id, {"$inc": {"price": rng.randint(-5, 5)}})
            else:
                server.handle_update("items", document_id, {"$inc": {"stock": -1}})

        after = snapshot_results(database, queries)
        for query in queries:
            key = query.cache_key
            if before[key] != after[key]:
                # Result membership changed -> the EBF must flag the query
                # (its TTL has not expired because the clock advanced by only
                # a few seconds and minimum TTLs are >= 1 s with CDN factor 3).
                assert server.ebf.is_stale(key), f"missed invalidation for {key}"

    def test_object_list_queries_flag_content_changes_too(self, world, clock):
        server, queries = world["server"], world["queries"]
        category_query = queries[0]
        server.handle_query(category_query)
        member = next(iter(snapshot_results(world["database"], [category_query]).values()))
        target = sorted(member)[0]
        # A price change keeps the membership but changes the content.
        server.handle_update("items", target, {"$inc": {"price": 1}})
        assert server.ebf.is_stale(category_query.cache_key)

    def test_cdn_purge_accompanies_every_query_invalidation(self, world, clock):
        server, cdn, queries = world["server"], world["cdn"], world["queries"]
        query = queries[1]
        response = server.handle_query(query)
        cdn.store(query.cache_key, response)
        server.handle_update("items", "i1", {"$set": {"category": 0}})
        assert query.cache_key not in cdn

    def test_unregistered_queries_do_not_generate_invalidations(self, world):
        server = world["server"]
        before = server.counters.get("query_invalidations")
        server.handle_update("items", "i3", {"$set": {"category": 1}})
        assert server.counters.get("query_invalidations") == before

    def test_expired_queries_stop_being_flagged(self, world, clock):
        server, queries = world["server"], world["queries"]
        query = queries[2]
        server.handle_query(query)
        ttl = server.active_list.get(query.cache_key).current_ttl
        cdn_ttl = ttl * server.config.cdn_ttl_factor
        clock.advance(cdn_ttl + 1.0)
        server.handle_update("items", "i2", {"$set": {"category": 2}})
        # The highest issued TTL has expired, so no cache can hold the entry
        # and the EBF does not need to flag it.
        assert not server.ebf.contains(query.cache_key)


class TestThroughputAccounting:
    def test_matching_operations_scale_with_queries_and_events(self, world):
        server, queries = world["server"], world["queries"]
        for query in queries:
            server.handle_query(query)
        before_ops = sum(node.match_operations for node in server.invalidb.nodes)
        for index in range(20):
            server.handle_update("items", f"i{index}", {"$inc": {"price": 1}})
        after_ops = sum(node.match_operations for node in server.invalidb.nodes)
        stateless_queries = sum(1 for query in queries if not query.is_stateful)
        # The matching index prunes the fan-out: each price update touches the
        # two range queries (never equality-indexable) plus the one category
        # query whose indexed value appears in the before/after images -- not
        # all eight stateless queries like the legacy full scan did.
        assert after_ops - before_ops == 20 * 3
        assert after_ops - before_ops < 20 * stateless_queries

    def test_estimated_latency_reported(self, world):
        cluster = world["server"].invalidb
        assert cluster.estimated_p99_latency(update_rate=1000.0) >= cluster.capacity_model.base_latency
