"""End-to-end integration tests of the full caching pipeline (paper Section 5)."""

from __future__ import annotations

import pytest

from repro.caching import InvalidationCache
from repro.client import QuaestorClient
from repro.core import ConsistencyLevel, QuaestorConfig, QuaestorServer
from repro.db import Database, Query
from repro.invalidb import InvaliDBCluster


class TestSection5EndToEndExample:
    """Reproduces the four numbered steps of Figure 7 in the paper."""

    @pytest.fixture
    def world(self, clock):
        database = Database(clock=clock)
        posts = database.create_collection("posts")
        posts.create_index("tags")
        for index in range(12):
            posts.insert(
                {"_id": f"p{index}", "tags": ["example"] if index < 6 else ["other"], "views": index}
            )
        server = QuaestorServer(
            database, config=QuaestorConfig(), invalidb=InvaliDBCluster(matching_nodes=4)
        )
        cdn = InvalidationCache("cdn", clock)
        server.register_purge_target(cdn)
        client = QuaestorClient(server, cdn=cdn, clock=clock, refresh_interval=5.0)
        q1 = Query("posts", {"tags": "example"})
        q2 = Query("posts", {"tags": "other"})
        return locals()

    def test_full_lifecycle(self, world, clock):
        client, server, cdn = world["client"], world["server"], world["cdn"]
        q1, q2 = world["q1"], world["q2"]

        # Step 1: the client connects and retrieves the Bloom filter; q2 was
        # previously cached and invalidated, so it is contained.
        server.handle_query(q2)
        server.handle_update("posts", "p7", {"$set": {"tags": ["other", "new"]}})
        client.connect()
        assert client.bloom_filter.contains(q2.cache_key)

        # Step 2: loading q2 triggers a revalidation that refreshes all caches.
        result_q2 = client.query(q2)
        assert result_q2.level == "origin"
        assert client.query(q2).level == "client"  # now fresh locally

        # Step 3: a query not in the Bloom filter (q1) is served by caches.
        client.query(q1)
        assert client.query(q1).level == "client"

        # Step 4: an update changes q1's result; InvaliDB detects the match,
        # the EBF is updated and the CDN purged.
        server.handle_update("posts", "p7", {"$set": {"tags": ["example"]}})
        assert server.ebf.is_stale(q1.cache_key)
        assert q1.cache_key not in cdn
        fresh_filter = server.get_bloom_filter()
        assert fresh_filter.contains(q1.cache_key)

        # After the client's refresh interval, it revalidates and sees 7 posts.
        clock.advance(6.0)
        refreshed = client.query(q1)
        assert len(refreshed.value) == 7


class TestMultiClientConsistency:
    @pytest.fixture
    def world(self, clock):
        database = Database(clock=clock)
        articles = database.create_collection("articles")
        articles.create_index("section")
        for index in range(30):
            articles.insert(
                {"_id": f"a{index}", "section": "news" if index % 2 == 0 else "sports",
                 "headline": f"Article {index}", "clicks": index}
            )
        server = QuaestorServer(
            database, config=QuaestorConfig(), invalidb=InvaliDBCluster(matching_nodes=4)
        )
        cdn = InvalidationCache("cdn", clock)
        server.register_purge_target(cdn)
        writers = QuaestorClient(server, cdn=cdn, clock=clock, refresh_interval=2.0, name="writer")
        readers = [
            QuaestorClient(server, cdn=cdn, clock=clock, refresh_interval=2.0, name=f"reader-{i}")
            for i in range(3)
        ]
        for participant in [writers, *readers]:
            participant.connect()
        return locals()

    def test_cdn_shared_between_clients(self, world):
        readers = world["readers"]
        query = Query("articles", {"section": "news"})
        assert readers[0].query(query).level == "origin"
        assert readers[1].query(query).level == "cdn"
        assert readers[2].query(query).level == "cdn"

    def test_staleness_is_bounded_for_all_clients(self, world, clock):
        readers, writer, server = world["readers"], world["writers"], world["server"]
        query = Query("articles", {"section": "news"})
        for reader in readers:
            reader.query(query)
        # The writer moves an article into the news section.
        writer.update("articles", "a1", {"$set": {"section": "news"}})
        # Within Delta, readers may still see the old result from their caches.
        early_sizes = {len(reader.query(query).value) for reader in readers}
        assert early_sizes <= {15, 16}
        # After Delta, every reader must observe the new result.
        clock.advance(3.0)
        late_sizes = {len(reader.query(query).value) for reader in readers}
        assert late_sizes == {16}

    def test_strong_reads_are_never_stale(self, world):
        readers, writer = world["readers"], world["writers"]
        query = Query("articles", {"section": "sports"})
        readers[0].query(query)
        writer.update("articles", "a0", {"$set": {"section": "sports"}})
        strong = readers[0].query(query, consistency=ConsistencyLevel.STRONG)
        assert len(strong.value) == 16

    def test_read_your_writes_across_cached_reads(self, world):
        writer = world["writers"]
        writer.read("articles", "a2")
        writer.update("articles", "a2", {"$set": {"headline": "UPDATED"}})
        assert writer.read("articles", "a2").value["headline"] == "UPDATED"

    def test_server_statistics_reflect_activity(self, world):
        server, readers = world["server"], world["readers"]
        query = Query("articles", {"section": "news"})
        for reader in readers:
            reader.query(query)
        stats = server.statistics()
        assert stats["active_queries"] >= 1
        assert stats["invalidb_active_queries"] >= 1


class TestCacheHitRateBuildUp:
    def test_read_heavy_workload_reaches_high_hit_rates(self, clock):
        """Integration: a Zipfian read-heavy loop ends up mostly cache-served."""
        from repro.workloads import DatasetSpec, WorkloadGenerator, WorkloadSpec, generate_dataset

        database = Database(clock=clock)
        dataset = generate_dataset(DatasetSpec(num_tables=2, documents_per_table=400, queries_per_table=30))
        dataset.load_into(database)
        server = QuaestorServer(
            database, config=QuaestorConfig(), invalidb=InvaliDBCluster(matching_nodes=2)
        )
        cdn = InvalidationCache("cdn", clock)
        server.register_purge_target(cdn)
        client = QuaestorClient(server, cdn=cdn, clock=clock, refresh_interval=1.0)
        client.connect()

        generator = WorkloadGenerator(WorkloadSpec.read_heavy(), dataset)
        hits = 0
        total = 0
        for operation in generator.stream(1_500):
            clock.advance(0.01)
            if operation.type.value == "query":
                result = client.query(operation.query)
            elif operation.type.value == "read":
                result = client.read(operation.collection, operation.document_id)
            else:
                client.update(operation.collection, operation.document_id, operation.payload)
                continue
            total += 1
            if result.level in ("client", "cdn", "session"):
                hits += 1
        assert total > 0
        assert hits / total > 0.6
