"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.caching import InvalidationCache
from repro.clock import VirtualClock
from repro.client import QuaestorClient
from repro.core import QuaestorConfig, QuaestorServer
from repro.db import Database, Query
from repro.invalidb import InvaliDBCluster


@pytest.fixture
def clock() -> VirtualClock:
    """A fresh virtual clock starting at zero."""
    return VirtualClock()


@pytest.fixture
def database(clock: VirtualClock) -> Database:
    """An empty document database bound to the virtual clock."""
    return Database(clock=clock)


@pytest.fixture
def posts(database: Database):
    """A ``posts`` collection pre-populated with tagged blog posts.

    Even-numbered posts carry the ``example`` tag (the paper's running
    example); odd-numbered posts carry ``other``.
    """
    collection = database.create_collection("posts")
    collection.create_index("tags")
    for index in range(20):
        collection.insert(
            {
                "_id": f"p{index}",
                "title": f"Post {index}",
                "tags": ["example"] if index % 2 == 0 else ["other"],
                "views": index,
                "author": {"name": f"user{index % 3}", "karma": index * 10},
            }
        )
    return collection


@pytest.fixture
def example_query() -> Query:
    """The paper's running example query: posts tagged 'example'."""
    return Query("posts", {"tags": "example"})


@pytest.fixture
def deployment(clock: VirtualClock, database: Database, posts):
    """A full single-node deployment: server, CDN and one connected client."""
    server = QuaestorServer(
        database, config=QuaestorConfig(), invalidb=InvaliDBCluster(matching_nodes=4)
    )
    cdn = InvalidationCache("cdn", clock)
    server.register_purge_target(cdn)
    client = QuaestorClient(server, cdn=cdn, clock=clock, refresh_interval=10.0)
    client.connect()
    return {"clock": clock, "database": database, "server": server, "cdn": cdn, "client": client}
