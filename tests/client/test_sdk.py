"""Tests for the client SDK: cached loads, revalidations, consistency levels."""

from __future__ import annotations

import pytest

from repro.caching import InvalidationCache
from repro.client import QuaestorClient
from repro.core import ConsistencyLevel, QuaestorConfig, QuaestorServer
from repro.db import Query
from repro.invalidb import InvaliDBCluster


@pytest.fixture
def server(database, posts):
    return QuaestorServer(
        database, config=QuaestorConfig(), invalidb=InvaliDBCluster(matching_nodes=2)
    )


@pytest.fixture
def cdn(server, clock):
    cache = InvalidationCache("cdn", clock)
    server.register_purge_target(cache)
    return cache


@pytest.fixture
def client(server, cdn, clock):
    sdk = QuaestorClient(server, cdn=cdn, clock=clock, refresh_interval=10.0)
    sdk.connect()
    return sdk


class TestCachedLoads:
    def test_first_query_hits_origin_then_client_cache(self, client, example_query):
        assert client.query(example_query).level == "origin"
        assert client.query(example_query).level == "client"

    def test_query_results_cache_member_records(self, client, example_query):
        client.query(example_query)
        record = client.read("posts", "p0")
        assert record.level == "client"
        assert record.value["_id"] == "p0"

    def test_reads_cache_individually(self, client):
        assert client.read("posts", "p1").level == "origin"
        assert client.read("posts", "p1").level == "client"

    def test_second_client_benefits_from_cdn(self, server, cdn, clock, example_query):
        first = QuaestorClient(server, cdn=cdn, clock=clock, name="first")
        second = QuaestorClient(server, cdn=cdn, clock=clock, name="second")
        first.connect()
        second.connect()
        first.query(example_query)
        assert second.query(example_query).level == "cdn"

    def test_client_without_caches_always_hits_origin(self, server, clock, example_query):
        uncached = QuaestorClient(
            server, cdn=None, clock=clock, use_client_cache=False, use_ebf=False
        )
        assert uncached.query(example_query).level == "origin"
        assert uncached.query(example_query).level == "origin"

    def test_missing_record_returns_none(self, client):
        result = client.read("posts", "does-not-exist")
        assert result.value is None


class TestEbfDrivenRevalidation:
    def test_stale_query_revalidated_after_refresh(self, client, example_query, clock):
        client.query(example_query)
        # Another client's write changes the result set.
        client.server.handle_update("posts", "p1", {"$set": {"tags": ["example"]}})
        clock.advance(11.0)  # past the refresh interval
        result = client.query(example_query)
        assert result.level in ("origin", "cdn")
        assert len(result.value) == 11

    def test_within_delta_stale_cache_hit_is_allowed(self, client, example_query, clock):
        client.query(example_query)
        client.server.handle_update("posts", "p1", {"$set": {"tags": ["example"]}})
        clock.advance(1.0)  # still within Delta
        result = client.query(example_query)
        assert result.level == "client"
        assert len(result.value) == 10  # bounded staleness

    def test_whitelist_prevents_repeated_revalidations(self, client, example_query, clock):
        client.query(example_query)
        client.server.handle_update("posts", "p0", {"$set": {"tags": ["other"]}})
        clock.advance(11.0)
        first = client.query(example_query)   # revalidation (EBF refresh due)
        second = client.query(example_query)  # whitelisted -> client cache
        assert first.level in ("origin", "cdn")
        assert second.level == "client"

    def test_ebf_refresh_counter(self, client, example_query, clock):
        client.query(example_query)
        clock.advance(11.0)
        client.query(example_query)
        assert client.counters.get("ebf_refreshes") >= 2  # connect + refresh


class TestSessionGuarantees:
    def test_read_your_writes(self, client):
        client.update("posts", "p0", {"$set": {"views": 123}})
        result = client.read("posts", "p0")
        assert result.value["views"] == 123

    def test_monotonic_reads_never_regress(self, client, cdn, clock):
        # Client observes version 2 via a direct read after a write.
        client.update("posts", "p2", {"$inc": {"views": 1}})
        first = client.read("posts", "p2")
        assert first.version == 2
        # Another client's stale CDN copy of version 1 exists; force it into
        # the CDN to simulate an out-of-date edge node.
        from repro.db.query import record_key
        from repro.rest.messages import Response

        stale_body = {"document": {"_id": "p2", "views": 0}, "version": 1}
        cdn.store(record_key("posts", "p2"), Response.ok(stale_body, ttl=100.0, etag='"old"'))
        client.client_cache.remove(record_key("posts", "p2"))
        result = client.read("posts", "p2")
        assert result.version >= 2  # session fallback, no regression

    def test_own_update_invalidates_client_cache_copy(self, client):
        client.read("posts", "p3")
        client.update("posts", "p3", {"$inc": {"views": 5}})
        result = client.read("posts", "p3")
        # p3 starts with views=3 (fixture); the session must observe 3 + 5.
        assert result.value["views"] == 8

    def test_insert_and_delete_through_sdk(self, client, database):
        result = client.insert("posts", {"_id": "new-post", "tags": ["example"], "views": 0})
        assert result.version == 1
        assert database.get("posts", "new-post")["views"] == 0
        client.delete("posts", "new-post")
        assert database.collection("posts").get_or_none("new-post") is None

    def test_reinsert_reports_the_continued_version(self, client, database):
        """Versions never recycle: re-inserting a deleted _id continues its
        sequence, and the SDK must report the server-assigned version (the
        session otherwise records a version that aliases other content)."""
        client.insert("posts", {"_id": "phoenix", "views": 0})
        client.update("posts", "phoenix", {"$inc": {"views": 1}})
        client.delete("posts", "phoenix")
        reborn = client.insert("posts", {"_id": "phoenix", "views": 99})
        assert reborn.version == 3
        assert client.session.own_write("record:posts/phoenix")[0] == 3
        read = client.read("posts", "phoenix")
        assert read.version == 3
        assert read.value["views"] == 99


class TestConsistencyLevels:
    def test_strong_consistency_bypasses_caches(self, client, example_query):
        client.query(example_query)
        result = client.query(example_query, consistency=ConsistencyLevel.STRONG)
        assert result.level == "origin"

    def test_strong_read_sees_latest_write_immediately(self, client, example_query):
        client.query(example_query)
        client.server.handle_update("posts", "p1", {"$set": {"tags": ["example"]}})
        stale = client.query(example_query)
        fresh = client.query(example_query, consistency=ConsistencyLevel.STRONG)
        assert len(stale.value) == 10
        assert len(fresh.value) == 11

    def test_causal_session_revalidates_after_newer_read(self, server, cdn, clock):
        causal = QuaestorClient(
            server, cdn=cdn, clock=clock, refresh_interval=60.0,
            consistency=ConsistencyLevel.CAUSAL, name="causal",
        )
        causal.connect()
        causal.read("posts", "p0")          # origin read (newer than the EBF)
        second = causal.read("posts", "p0")  # must revalidate, not client-cache
        assert second.level != "client"

    def test_default_client_serves_from_cache(self, client):
        client.read("posts", "p0")
        assert client.read("posts", "p0").level == "client"


class TestPreparedRecordMemo:
    def test_same_members_in_opposite_order_store_in_served_order(self, database, posts, clock):
        """Two queries over the same members with opposite sorts share a
        result etag but not a serving order; the prepared-record memo must
        not replay the first order, or LRU recency in a bounded client cache
        would diverge from the legacy per-body loop."""
        from repro import perf

        def entry_order():
            server = QuaestorServer(database)
            sdk = QuaestorClient(server, clock=clock, client_cache_max_entries=32)
            sdk.connect()
            sdk.query(Query("posts", {"tags": "example"}, sort=[("views", 1)]))
            sdk.query(Query("posts", {"tags": "example"}, sort=[("views", -1)]))
            return [key for key in sdk.client_cache._entries if key.startswith("record:")]

        fast = entry_order()
        with perf.legacy_hot_paths():
            legacy = entry_order()
        assert fast == legacy


class TestIdListAssembly:
    def test_id_list_queries_fetch_records_individually(self, database, posts, clock):
        config = QuaestorConfig(object_list_max_size=0)  # force id-lists
        server = QuaestorServer(database, config=config)
        cdn = InvalidationCache("cdn", clock)
        server.register_purge_target(cdn)
        sdk = QuaestorClient(server, cdn=cdn, clock=clock)
        sdk.connect()
        query = Query("posts", {"tags": "example"})
        result = sdk.query(query)
        assert len(result.value) == 10
        assert len(result.extra_levels) == 10
        # Records fetched during assembly are now cached individually.
        assert sdk.read("posts", "p0").level == "client"

    def test_cache_statistics_exposed(self, client, example_query):
        client.query(example_query)
        client.query(example_query)
        stats = client.cache_statistics()
        assert stats["queries"] == 2
        assert stats["client_cache"]["hits"] >= 1
