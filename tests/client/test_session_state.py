"""Tests for the client-side session state, whitelist and freshness policy."""

from __future__ import annotations

import pytest

from repro.client import ClientSession, DifferentialWhitelist, FreshnessPolicy


class TestDifferentialWhitelist:
    def test_added_keys_are_fresh(self):
        whitelist = DifferentialWhitelist()
        whitelist.add("query:q")
        assert "query:q" in whitelist
        assert whitelist.contains("query:q")

    def test_reset_clears_everything(self):
        whitelist = DifferentialWhitelist()
        whitelist.add("a")
        whitelist.add("b")
        whitelist.reset()
        assert len(whitelist) == 0
        assert "a" not in whitelist
        assert whitelist.resets == 1

    def test_counters(self):
        whitelist = DifferentialWhitelist()
        whitelist.add("a")
        whitelist.add("a")
        assert whitelist.additions == 2
        assert len(whitelist) == 1


class TestClientSession:
    def test_observe_read_tracks_highest_version(self):
        session = ClientSession()
        session.observe_read("record:posts/p1", 1, {"_id": "p1", "v": 1})
        session.observe_read("record:posts/p1", 3, {"_id": "p1", "v": 3})
        session.observe_read("record:posts/p1", 2, {"_id": "p1", "v": 2})
        assert session.highest_seen_version("record:posts/p1") == 3

    def test_newer_than_seen(self):
        session = ClientSession()
        assert session.newer_than_seen("key", 1)
        session.observe_read("key", 5, None)
        assert session.newer_than_seen("key", 5)
        assert not session.newer_than_seen("key", 4)

    def test_monotonic_fallback_returns_newest_copy(self):
        session = ClientSession()
        session.observe_read("key", 2, {"_id": "x", "value": "new"})
        fallback = session.monotonic_fallback("key")
        assert fallback == (2, {"_id": "x", "value": "new"})
        assert session.monotonic_violations_prevented == 1

    def test_monotonic_fallback_unknown_key(self):
        assert ClientSession().monotonic_fallback("unknown") is None

    def test_same_version_reobservation_keeps_snapshot_without_recopying(self):
        session = ClientSession()
        session.observe_read("key", 2, {"_id": "x", "value": "v2"})
        snapshot = session._seen_documents["key"]
        session.observe_read("key", 2, {"_id": "x", "value": "v2"})
        assert session._seen_documents["key"] is snapshot  # fast-path skip

    def test_fallback_documents_are_disjoint_from_session_state(self):
        """A caller mutating the fallback copy must not corrupt the snapshot
        (the same-version skip keeps that snapshot alive indefinitely)."""
        session = ClientSession()
        session.observe_read("key", 2, {"_id": "x", "value": "v2"})
        handed_out = session.monotonic_fallback("key")[1]
        handed_out["value"] = "mutated"
        assert session.monotonic_fallback("key")[1] == {"_id": "x", "value": "v2"}

    def test_none_snapshot_does_not_mask_a_real_document_at_same_version(self):
        """The same-version skip must store what the legacy path would: a
        falsy observation followed by a real document at the same version."""
        session = ClientSession()
        session.observe_read("key", 5, None)
        session.observe_read("key", 5, {"_id": "x", "value": "real"})
        assert session.monotonic_fallback("key") == (5, {"_id": "x", "value": "real"})

    def test_version_zero_sentinel_never_pins_content(self):
        """Version 0 is the 'unknown version' sentinel (missing
        record_versions); re-observations at 0 must keep re-storing, exactly
        like the legacy path."""
        session = ClientSession()
        session.observe_read("key", 0, {"_id": "x", "value": "first"})
        session.observe_read("key", 0, {"_id": "x", "value": "second"})
        assert session.monotonic_fallback("key") == (0, {"_id": "x", "value": "second"})

    def test_own_writes_recorded(self):
        session = ClientSession()
        session.record_own_write("key", 4, {"_id": "x"})
        assert session.own_write("key") == (4, {"_id": "x"})
        assert session.highest_seen_version("key") == 4

    def test_own_write_copies_document(self):
        session = ClientSession()
        document = {"_id": "x", "tags": ["a"]}
        session.record_own_write("key", 1, document)
        document["tags"].append("b")
        assert session.own_write("key")[1]["tags"] == ["a"]


class TestFreshnessPolicy:
    def test_needs_refresh_initially(self):
        policy = FreshnessPolicy(refresh_interval=10.0)
        assert policy.needs_refresh(0.0)
        assert policy.age(0.0) == float("inf")

    def test_refresh_cycle(self):
        policy = FreshnessPolicy(refresh_interval=10.0)
        policy.mark_refreshed(100.0)
        assert not policy.needs_refresh(105.0)
        assert policy.needs_refresh(110.0)
        assert policy.age(105.0) == 5.0

    def test_delta_equals_refresh_interval(self):
        assert FreshnessPolicy(refresh_interval=7.5).delta == 7.5

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            FreshnessPolicy(refresh_interval=0.0)
