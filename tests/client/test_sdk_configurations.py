"""Tests for the SDK's baseline configurations and edge behaviour."""

from __future__ import annotations

import pytest

from repro.caching import InvalidationCache
from repro.client import QuaestorClient
from repro.core import QuaestorConfig, QuaestorServer
from repro.db import Query
from repro.invalidb import InvaliDBCluster


@pytest.fixture
def server(database, posts):
    return QuaestorServer(
        database, config=QuaestorConfig(), invalidb=InvaliDBCluster(matching_nodes=2)
    )


@pytest.fixture
def cdn(server, clock):
    cache = InvalidationCache("cdn", clock)
    server.register_purge_target(cache)
    return cache


class TestBaselineConfigurations:
    def test_cdn_only_client_never_uses_client_cache(self, server, cdn, clock, example_query):
        client = QuaestorClient(
            server, cdn=cdn, clock=clock, use_client_cache=False, use_ebf=False
        )
        client.query(example_query)
        result = client.query(example_query)
        assert result.level == "cdn"
        assert len(client.client_cache) == 0

    def test_ebf_only_client_has_no_cdn_level(self, server, clock, example_query):
        client = QuaestorClient(server, cdn=None, clock=clock, refresh_interval=5.0)
        client.connect()
        client.query(example_query)
        assert client.query(example_query).level == "client"
        # Misses go straight to the origin (no CDN level exists).
        other = Query("posts", {"tags": "other"})
        assert client.query(other).level == "origin"

    def test_client_without_ebf_never_downloads_filter(self, server, cdn, clock):
        client = QuaestorClient(server, cdn=cdn, clock=clock, use_ebf=False)
        client.connect()
        assert client.bloom_filter is None
        assert server.counters.get("ebf_downloads") == 0

    def test_bounded_client_cache_evicts(self, server, cdn, clock):
        client = QuaestorClient(
            server, cdn=cdn, clock=clock, client_cache_max_entries=5
        )
        client.connect()
        for index in range(10):
            client.read("posts", f"p{index}")
        assert len(client.client_cache) <= 5
        assert client.client_cache.stats.evictions >= 5


class TestSdkInternals:
    def test_unknown_query_key_in_origin_fetch_rejected(self, server, cdn, clock):
        client = QuaestorClient(server, cdn=cdn, clock=clock)
        with pytest.raises(KeyError):
            client._origin_fetch("query:never-registered")

    def test_origin_fetch_routes_record_keys(self, server, cdn, clock):
        client = QuaestorClient(server, cdn=cdn, clock=clock)
        response = client._origin_fetch("record:posts/p0")
        assert response.body["document"]["_id"] == "p0"

    def test_counters_track_operation_mix(self, server, cdn, clock, example_query):
        client = QuaestorClient(server, cdn=cdn, clock=clock)
        client.connect()
        client.query(example_query)
        client.read("posts", "p0")
        client.update("posts", "p0", {"$inc": {"views": 1}})
        counts = client.counters.as_dict()
        assert counts["queries"] == 1
        assert counts["reads"] == 1
        assert counts["writes"] == 1

    def test_repr_contains_name_and_consistency(self, server, clock):
        client = QuaestorClient(server, clock=clock, name="my-browser")
        assert "my-browser" in repr(client)
