"""Tests for real-time query subscriptions (the EBF alternative)."""

from __future__ import annotations

import pytest

from repro.client import SubscriptionManager
from repro.core import QuaestorConfig, QuaestorServer
from repro.db import Query
from repro.invalidb import InvaliDBCluster, NotificationType


@pytest.fixture
def server(database, posts):
    return QuaestorServer(
        database, config=QuaestorConfig(), invalidb=InvaliDBCluster(matching_nodes=2)
    )


@pytest.fixture
def manager(server):
    return SubscriptionManager(server)


class TestSubscriptionLifecycle:
    def test_subscription_starts_with_current_result(self, manager, example_query):
        subscription = manager.subscribe(example_query)
        assert len(subscription) == 10
        assert manager.active_subscriptions == 1

    def test_resubscribing_returns_same_handle(self, manager, example_query):
        assert manager.subscribe(example_query) is manager.subscribe(example_query)
        assert manager.active_subscriptions == 1

    def test_unsubscribe(self, manager, example_query):
        manager.subscribe(example_query)
        assert manager.unsubscribe(example_query) is True
        assert manager.unsubscribe(example_query) is False
        assert manager.active_subscriptions == 0

    def test_close_detaches_everything(self, manager, server, example_query):
        subscription = manager.subscribe(example_query)
        manager.close()
        server.handle_update("posts", "p1", {"$set": {"tags": ["example"]}})
        assert len(subscription.events) == 0


class TestLiveMaintenance:
    def test_add_notification_grows_the_result(self, manager, server, example_query):
        subscription = manager.subscribe(example_query)
        server.handle_update("posts", "p1", {"$set": {"tags": ["example"]}})
        assert len(subscription) == 11
        assert subscription.events[-1].type is NotificationType.ADD

    def test_remove_notification_shrinks_the_result(self, manager, server, example_query):
        subscription = manager.subscribe(example_query)
        server.handle_update("posts", "p0", {"$set": {"tags": ["other"]}})
        assert len(subscription) == 9
        assert subscription.events[-1].type is NotificationType.REMOVE

    def test_change_notification_updates_content(self, manager, server, example_query):
        subscription = manager.subscribe(example_query)
        server.handle_update("posts", "p0", {"$set": {"views": 999}})
        updated = {doc["_id"]: doc for doc in subscription.result()}["p0"]
        assert updated["views"] == 999
        assert subscription.events[-1].type is NotificationType.CHANGE

    def test_listeners_receive_snapshots(self, manager, server, example_query):
        subscription = manager.subscribe(example_query)
        received = []
        subscription.on_change(lambda kind, doc_id, snapshot: received.append((kind, doc_id, len(snapshot))))
        server.handle_update("posts", "p1", {"$set": {"tags": ["example"]}})
        assert received == [(NotificationType.ADD, "p1", 11)]

    def test_sorted_subscription_respects_window(self, manager, server):
        top3 = Query("posts", {"tags": "example"}, sort=[("views", -1)], limit=3)
        subscription = manager.subscribe(top3)
        assert [doc["_id"] for doc in subscription.result()] == ["p18", "p16", "p14"]
        server.handle_update("posts", "p0", {"$set": {"views": 1000}})
        assert [doc["_id"] for doc in subscription.result()][0] == "p0"
        assert len(subscription) == 3

    def test_unrelated_writes_do_not_disturb_subscription(self, manager, server, example_query):
        subscription = manager.subscribe(example_query)
        server.handle_update("posts", "p1", {"$inc": {"views": 1}})  # p1 not in result
        assert len(subscription.events) == 0
        assert len(subscription) == 10

    def test_deleted_member_is_removed(self, manager, server, example_query):
        subscription = manager.subscribe(example_query)
        server.handle_delete("posts", "p2")
        assert "p2" not in {doc["_id"] for doc in subscription.result()}
