"""Tests for secondary indexes."""

from __future__ import annotations

import pytest

from repro.db.indexes import HashIndex, IndexSet


class TestHashIndex:
    def test_add_and_lookup(self):
        index = HashIndex("category")
        index.add("d1", {"category": "tech"})
        index.add("d2", {"category": "tech"})
        index.add("d3", {"category": "life"})
        assert index.lookup("tech") == {"d1", "d2"}
        assert index.lookup("life") == {"d3"}
        assert index.lookup("missing") == set()

    def test_multikey_indexing_of_arrays(self):
        index = HashIndex("tags")
        index.add("d1", {"tags": ["a", "b"]})
        assert index.lookup("a") == {"d1"}
        assert index.lookup("b") == {"d1"}
        assert index.lookup(["a", "b"]) == {"d1"}

    def test_remove(self):
        index = HashIndex("category")
        index.add("d1", {"category": "tech"})
        index.remove("d1", {"category": "tech"})
        assert index.lookup("tech") == set()
        assert len(index) == 0

    def test_update_moves_entry(self):
        index = HashIndex("category")
        index.add("d1", {"category": "tech"})
        index.update("d1", {"category": "tech"}, {"category": "life"})
        assert index.lookup("tech") == set()
        assert index.lookup("life") == {"d1"}

    def test_nested_field_indexing(self):
        index = HashIndex("author.name")
        index.add("d1", {"author": {"name": "alice"}})
        assert index.lookup("alice") == {"d1"}

    def test_requires_field_name(self):
        with pytest.raises(ValueError):
            HashIndex("")


class TestIndexSet:
    def test_create_is_idempotent(self):
        indexes = IndexSet()
        first = indexes.create("category")
        second = indexes.create("category")
        assert first is second
        assert indexes.fields() == ["category"]

    def test_candidate_ids_for_equality(self):
        indexes = IndexSet()
        indexes.create("category")
        indexes.add_document("d1", {"category": "a", "views": 1})
        indexes.add_document("d2", {"category": "b", "views": 2})
        assert indexes.candidate_ids({"category": "a"}) == {"d1"}
        assert indexes.candidate_ids({"category": {"$eq": "b"}}) == {"d2"}

    def test_candidate_ids_none_when_not_indexed(self):
        indexes = IndexSet()
        indexes.create("category")
        assert indexes.candidate_ids({"views": 3}) is None
        assert indexes.candidate_ids({"category": {"$gt": 1}}) is None

    def test_candidate_ids_intersects_multiple_indexes(self):
        indexes = IndexSet()
        indexes.create("category")
        indexes.create("author")
        indexes.add_document("d1", {"category": "a", "author": "x"})
        indexes.add_document("d2", {"category": "a", "author": "y"})
        assert indexes.candidate_ids({"category": "a", "author": "y"}) == {"d2"}

    def test_document_lifecycle(self):
        indexes = IndexSet()
        indexes.create("category")
        indexes.add_document("d1", {"category": "a"})
        indexes.update_document("d1", {"category": "a"}, {"category": "b"})
        assert indexes.candidate_ids({"category": "b"}) == {"d1"}
        indexes.remove_document("d1", {"category": "b"})
        assert indexes.candidate_ids({"category": "b"}) == set()
