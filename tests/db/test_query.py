"""Tests for query normalisation, validation and cache keys."""

from __future__ import annotations

import pytest

from repro.db.query import Query, record_key
from repro.errors import InvalidQueryError, UnsupportedOperationError


class TestConstruction:
    def test_requires_collection(self):
        with pytest.raises(InvalidQueryError):
            Query("", {"a": 1})

    def test_rejects_bad_limit_offset(self):
        with pytest.raises(InvalidQueryError):
            Query("posts", limit=0)
        with pytest.raises(InvalidQueryError):
            Query("posts", offset=-1)

    def test_rejects_bad_sort(self):
        with pytest.raises(InvalidQueryError):
            Query("posts", sort=[("views", 2)])
        with pytest.raises(InvalidQueryError):
            Query("posts", sort=[("", 1)])

    def test_queries_are_immutable(self):
        query = Query("posts", {"a": 1})
        with pytest.raises(AttributeError):
            query.collection = "other"

    def test_unknown_operator_rejected(self):
        with pytest.raises(InvalidQueryError):
            Query("posts", {"views": {"$nearSphere": [0, 0]}})

    def test_joins_and_aggregations_rejected(self):
        """InvaliDB does not support joins/aggregations (paper Section 4.1)."""
        with pytest.raises(UnsupportedOperationError):
            Query("posts", {"$lookup": {"from": "users"}})
        with pytest.raises(UnsupportedOperationError):
            Query("posts", {"$group": {"_id": "$author"}})


class TestNormalisation:
    def test_equivalent_filters_share_cache_key(self):
        first = Query("posts", {"views": {"$gt": 1}, "tags": "example"})
        second = Query("posts", {"tags": "example", "views": {"$gt": 1}})
        assert first.cache_key == second.cache_key
        assert first == second
        assert hash(first) == hash(second)

    def test_different_filters_have_different_keys(self):
        assert Query("posts", {"a": 1}).cache_key != Query("posts", {"a": 2}).cache_key

    def test_collection_is_part_of_key(self):
        assert Query("posts", {"a": 1}).cache_key != Query("users", {"a": 1}).cache_key

    def test_windowing_is_part_of_key(self):
        base = Query("posts", {"a": 1})
        limited = Query("posts", {"a": 1}, limit=10)
        offset = Query("posts", {"a": 1}, limit=10, offset=5)
        assert len({base.cache_key, limited.cache_key, offset.cache_key}) == 3

    def test_sort_direction_is_part_of_key(self):
        ascending = Query("posts", {}, sort=[("views", 1)])
        descending = Query("posts", {}, sort=[("views", -1)])
        assert ascending.cache_key != descending.cache_key

    def test_url_contains_collection_and_criteria(self):
        query = Query("posts", {"tags": "example"}, sort=[("views", -1)], limit=5)
        url = query.to_url()
        assert url.startswith("/db/posts/query?q=")
        assert "limit=5" in url
        assert "sort=" in url

    def test_record_key_format(self):
        assert record_key("posts", "p1") == "record:posts/p1"


class TestStatefulness:
    def test_plain_query_is_stateless(self):
        assert not Query("posts", {"a": 1}).is_stateful

    def test_sorted_query_is_stateful(self):
        assert Query("posts", {}, sort=[("views", -1)]).is_stateful

    def test_limit_or_offset_makes_stateful(self):
        assert Query("posts", {}, limit=10).is_stateful
        assert Query("posts", {}, offset=5).is_stateful


class TestMatching:
    def test_matches_delegates_to_predicates(self):
        query = Query("posts", {"tags": "example", "views": {"$gte": 10}})
        assert query.matches({"tags": ["example"], "views": 15})
        assert not query.matches({"tags": ["example"], "views": 5})

    def test_matches_ignores_windowing(self):
        query = Query("posts", {"views": {"$gt": 0}}, limit=1)
        assert query.matches({"views": 5})
