"""Tests for the MongoDB-style predicate matcher."""

from __future__ import annotations

import pytest

from repro.db.predicates import matches
from repro.errors import InvalidQueryError

POST = {
    "_id": "p1",
    "title": "Hello",
    "tags": ["example", "music"],
    "views": 42,
    "rating": 4.5,
    "published": True,
    "author": {"name": "alice", "karma": 100},
    "comments": [
        {"user": "bob", "likes": 3},
        {"user": "carol", "likes": 10},
    ],
}


class TestEquality:
    def test_simple_equality(self):
        assert matches(POST, {"title": "Hello"})
        assert not matches(POST, {"title": "Goodbye"})

    def test_array_contains_semantics(self):
        """The paper's running example: WHERE tags CONTAINS 'example'."""
        assert matches(POST, {"tags": "example"})
        assert matches(POST, {"tags": "music"})
        assert not matches(POST, {"tags": "sports"})

    def test_whole_array_equality(self):
        assert matches(POST, {"tags": ["example", "music"]})
        assert not matches(POST, {"tags": ["music", "example"]})

    def test_nested_field_equality(self):
        assert matches(POST, {"author.name": "alice"})
        assert not matches(POST, {"author.name": "bob"})

    def test_array_of_documents_fan_out(self):
        assert matches(POST, {"comments.user": "bob"})
        assert not matches(POST, {"comments.user": "dave"})

    def test_missing_field_matches_none(self):
        assert matches(POST, {"nonexistent": None})
        assert not matches(POST, {"nonexistent": "value"})

    def test_empty_filter_matches_everything(self):
        assert matches(POST, {})

    def test_boolean_not_confused_with_number(self):
        assert matches(POST, {"published": True})
        assert not matches(POST, {"published": 1})

    def test_explicit_eq_operator(self):
        assert matches(POST, {"views": {"$eq": 42}})


class TestComparisons:
    def test_gt_gte(self):
        assert matches(POST, {"views": {"$gt": 41}})
        assert not matches(POST, {"views": {"$gt": 42}})
        assert matches(POST, {"views": {"$gte": 42}})

    def test_lt_lte(self):
        assert matches(POST, {"views": {"$lt": 43}})
        assert not matches(POST, {"views": {"$lt": 42}})
        assert matches(POST, {"views": {"$lte": 42}})

    def test_range_combination(self):
        assert matches(POST, {"views": {"$gte": 40, "$lt": 50}})
        assert not matches(POST, {"views": {"$gte": 40, "$lt": 42}})

    def test_comparison_ignores_mismatched_types(self):
        assert not matches(POST, {"title": {"$gt": 5}})

    def test_ne(self):
        assert matches(POST, {"views": {"$ne": 43}})
        assert not matches(POST, {"views": {"$ne": 42}})

    def test_comparison_on_array_elements(self):
        assert matches(POST, {"comments.likes": {"$gt": 5}})
        assert not matches(POST, {"comments.likes": {"$gt": 50}})


class TestSetOperators:
    def test_in(self):
        assert matches(POST, {"views": {"$in": [41, 42, 43]}})
        assert not matches(POST, {"views": {"$in": [1, 2]}})

    def test_in_with_array_field(self):
        assert matches(POST, {"tags": {"$in": ["sports", "music"]}})

    def test_nin(self):
        assert matches(POST, {"views": {"$nin": [1, 2]}})
        assert not matches(POST, {"views": {"$nin": [42]}})

    def test_in_requires_list(self):
        with pytest.raises(InvalidQueryError):
            matches(POST, {"views": {"$in": 42}})

    def test_all(self):
        assert matches(POST, {"tags": {"$all": ["example", "music"]}})
        assert not matches(POST, {"tags": {"$all": ["example", "sports"]}})

    def test_size(self):
        assert matches(POST, {"tags": {"$size": 2}})
        assert not matches(POST, {"tags": {"$size": 3}})

    def test_exists(self):
        assert matches(POST, {"rating": {"$exists": True}})
        assert matches(POST, {"missing": {"$exists": False}})
        assert not matches(POST, {"missing": {"$exists": True}})


class TestLogicalOperators:
    def test_and(self):
        assert matches(POST, {"$and": [{"views": {"$gt": 10}}, {"tags": "example"}]})
        assert not matches(POST, {"$and": [{"views": {"$gt": 10}}, {"tags": "sports"}]})

    def test_or(self):
        assert matches(POST, {"$or": [{"views": {"$gt": 100}}, {"tags": "example"}]})
        assert not matches(POST, {"$or": [{"views": {"$gt": 100}}, {"tags": "sports"}]})

    def test_nor(self):
        assert matches(POST, {"$nor": [{"views": {"$gt": 100}}, {"tags": "sports"}]})
        assert not matches(POST, {"$nor": [{"tags": "example"}]})

    def test_not(self):
        assert matches(POST, {"views": {"$not": {"$gt": 100}}})
        assert not matches(POST, {"views": {"$not": {"$gt": 10}}})

    def test_implicit_and_of_fields(self):
        assert matches(POST, {"tags": "example", "views": {"$lt": 100}})
        assert not matches(POST, {"tags": "example", "views": {"$gt": 100}})

    def test_nested_logical_expressions(self):
        criteria = {
            "$or": [
                {"$and": [{"tags": "example"}, {"views": {"$gte": 42}}]},
                {"author.karma": {"$gt": 1000}},
            ]
        }
        assert matches(POST, criteria)

    def test_logical_operator_requires_list(self):
        with pytest.raises(InvalidQueryError):
            matches(POST, {"$and": {"views": 1}})
        with pytest.raises(InvalidQueryError):
            matches(POST, {"$or": []})


class TestSpecialisedOperators:
    def test_regex(self):
        assert matches(POST, {"title": {"$regex": "^Hel"}})
        assert not matches(POST, {"title": {"$regex": "^World"}})

    def test_regex_invalid_pattern(self):
        with pytest.raises(InvalidQueryError):
            matches(POST, {"title": {"$regex": "("}})

    def test_elem_match_with_document_filter(self):
        assert matches(POST, {"comments": {"$elemMatch": {"user": "bob", "likes": {"$lt": 5}}}})
        assert not matches(POST, {"comments": {"$elemMatch": {"user": "bob", "likes": {"$gt": 5}}}})

    def test_elem_match_with_operator_condition(self):
        document = {"scores": [3, 9, 12]}
        assert matches(document, {"scores": {"$elemMatch": {"$gt": 10}}})
        assert not matches(document, {"scores": {"$elemMatch": {"$gt": 20}}})

    def test_mod(self):
        assert matches(POST, {"views": {"$mod": [7, 0]}})
        assert not matches(POST, {"views": {"$mod": [5, 1]}})

    def test_mod_validation(self):
        with pytest.raises(InvalidQueryError):
            matches(POST, {"views": {"$mod": [0, 1]}})
        with pytest.raises(InvalidQueryError):
            matches(POST, {"views": {"$mod": [7]}})

    def test_type(self):
        assert matches(POST, {"views": {"$type": "number"}})
        assert matches(POST, {"tags": {"$type": "array"}})
        assert not matches(POST, {"views": {"$type": "string"}})


class TestValidation:
    def test_unknown_operator_rejected(self):
        with pytest.raises(InvalidQueryError):
            matches(POST, {"views": {"$near": 10}})

    def test_unknown_top_level_operator_rejected(self):
        with pytest.raises(InvalidQueryError):
            matches(POST, {"$where": "this.views > 10"})

    def test_mixed_operator_and_literal_rejected(self):
        with pytest.raises(InvalidQueryError):
            matches(POST, {"views": {"$gt": 10, "literal": 5}})

    def test_non_document_filter_rejected(self):
        with pytest.raises(InvalidQueryError):
            matches(POST, ["not", "a", "filter"])
