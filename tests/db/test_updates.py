"""Tests for the MongoDB-style update operators."""

from __future__ import annotations

import pytest

from repro.db.updates import apply_update
from repro.errors import InvalidQueryError


@pytest.fixture
def post():
    return {
        "_id": "p1",
        "title": "Hello",
        "tags": ["example"],
        "views": 10,
        "meta": {"likes": 2},
    }


class TestSetUnset:
    def test_set_scalar(self, post):
        updated = apply_update(post, {"$set": {"title": "New"}})
        assert updated["title"] == "New"
        assert post["title"] == "Hello"  # original untouched

    def test_set_nested_path(self, post):
        updated = apply_update(post, {"$set": {"meta.likes": 5, "meta.shares": 1}})
        assert updated["meta"] == {"likes": 5, "shares": 1}

    def test_set_copies_mutable_operands(self, post):
        tags = ["a", "b"]
        updated = apply_update(post, {"$set": {"tags": tags}})
        tags.append("c")
        assert updated["tags"] == ["a", "b"]

    def test_unset(self, post):
        updated = apply_update(post, {"$unset": {"title": ""}})
        assert "title" not in updated

    def test_unset_missing_is_noop(self, post):
        updated = apply_update(post, {"$unset": {"nonexistent": ""}})
        assert updated == post


class TestNumericOperators:
    def test_inc(self, post):
        assert apply_update(post, {"$inc": {"views": 5}})["views"] == 15
        assert apply_update(post, {"$inc": {"views": -3}})["views"] == 7

    def test_inc_creates_missing_field(self, post):
        assert apply_update(post, {"$inc": {"downloads": 2}})["downloads"] == 2

    def test_inc_requires_number(self, post):
        with pytest.raises(InvalidQueryError):
            apply_update(post, {"$inc": {"views": "five"}})
        with pytest.raises(InvalidQueryError):
            apply_update(post, {"$inc": {"title": 1}})

    def test_mul(self, post):
        assert apply_update(post, {"$mul": {"views": 3}})["views"] == 30

    def test_min_max(self, post):
        assert apply_update(post, {"$min": {"views": 5}})["views"] == 5
        assert apply_update(post, {"$min": {"views": 50}})["views"] == 10
        assert apply_update(post, {"$max": {"views": 50}})["views"] == 50
        assert apply_update(post, {"$max": {"views": 5}})["views"] == 10

    def test_min_max_set_missing_field(self, post):
        assert apply_update(post, {"$min": {"floor": 3}})["floor"] == 3
        assert apply_update(post, {"$max": {"ceiling": 9}})["ceiling"] == 9


class TestArrayOperators:
    def test_push(self, post):
        updated = apply_update(post, {"$push": {"tags": "music"}})
        assert updated["tags"] == ["example", "music"]

    def test_push_each(self, post):
        updated = apply_update(post, {"$push": {"tags": {"$each": ["a", "b"]}}})
        assert updated["tags"] == ["example", "a", "b"]

    def test_push_creates_array(self, post):
        updated = apply_update(post, {"$push": {"links": "http://x"}})
        assert updated["links"] == ["http://x"]

    def test_push_on_non_array_rejected(self, post):
        with pytest.raises(InvalidQueryError):
            apply_update(post, {"$push": {"views": 1}})

    def test_add_to_set_deduplicates(self, post):
        updated = apply_update(post, {"$addToSet": {"tags": "example"}})
        assert updated["tags"] == ["example"]
        updated = apply_update(post, {"$addToSet": {"tags": "music"}})
        assert updated["tags"] == ["example", "music"]

    def test_add_to_set_each(self, post):
        updated = apply_update(post, {"$addToSet": {"tags": {"$each": ["example", "new"]}}})
        assert updated["tags"] == ["example", "new"]

    def test_pull_literal(self, post):
        updated = apply_update(post, {"$pull": {"tags": "example"}})
        assert updated["tags"] == []

    def test_pull_with_condition(self):
        document = {"_id": "d", "scores": [1, 5, 9, 12]}
        updated = apply_update(document, {"$pull": {"scores": {"$gt": 6}}})
        assert updated["scores"] == [1, 5]

    def test_pull_missing_field_is_noop(self, post):
        assert apply_update(post, {"$pull": {"nonexistent": 1}}) == post

    def test_pop(self):
        document = {"_id": "d", "items": [1, 2, 3]}
        assert apply_update(document, {"$pop": {"items": 1}})["items"] == [1, 2]
        assert apply_update(document, {"$pop": {"items": -1}})["items"] == [2, 3]

    def test_pop_requires_one_or_minus_one(self):
        with pytest.raises(InvalidQueryError):
            apply_update({"_id": "d", "items": []}, {"$pop": {"items": 2}})


class TestOtherOperators:
    def test_rename(self, post):
        updated = apply_update(post, {"$rename": {"title": "headline"}})
        assert "title" not in updated
        assert updated["headline"] == "Hello"

    def test_rename_missing_is_noop(self, post):
        assert apply_update(post, {"$rename": {"nope": "new"}}) == post

    def test_current_date_sets_marker(self, post):
        updated = apply_update(post, {"$currentDate": {"modified": True}})
        assert updated["modified"] == {"$reproCurrentDate": True}


class TestReplacementAndValidation:
    def test_full_replacement_keeps_id(self, post):
        updated = apply_update(post, {"title": "Replaced", "views": 0})
        assert updated == {"_id": "p1", "title": "Replaced", "views": 0}

    def test_mixed_forms_rejected(self, post):
        with pytest.raises(InvalidQueryError):
            apply_update(post, {"$set": {"a": 1}, "b": 2})

    def test_unknown_operator_rejected(self, post):
        with pytest.raises(InvalidQueryError):
            apply_update(post, {"$bitShift": {"views": 1}})

    def test_id_modification_rejected(self, post):
        with pytest.raises(InvalidQueryError):
            apply_update(post, {"$set": {"_id": "other"}})

    def test_operator_arguments_must_be_documents(self, post):
        with pytest.raises(InvalidQueryError):
            apply_update(post, {"$set": ["title", "x"]})

    def test_non_document_update_rejected(self, post):
        with pytest.raises(InvalidQueryError):
            apply_update(post, "not-a-document")

    def test_multiple_operators_apply_in_order(self, post):
        updated = apply_update(
            post, {"$set": {"title": "New"}, "$inc": {"views": 1}, "$push": {"tags": "x"}}
        )
        assert updated["title"] == "New"
        assert updated["views"] == 11
        assert updated["tags"] == ["example", "x"]
