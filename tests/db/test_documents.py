"""Tests for document helpers: dotted paths, comparison and sorting."""

from __future__ import annotations

import pytest

from repro.db.documents import (
    bson_type,
    compare_values,
    deep_copy,
    get_path,
    has_path,
    set_path,
    sort_key,
    split_path,
    unset_path,
)


class TestPaths:
    def test_split_path(self):
        assert split_path("a.b.c") == ["a", "b", "c"]

    def test_split_path_rejects_malformed(self):
        with pytest.raises(ValueError):
            split_path("")
        with pytest.raises(ValueError):
            split_path("a..b")

    def test_get_nested_field(self):
        document = {"author": {"name": "alice", "stats": {"karma": 7}}}
        assert get_path(document, "author.name") == "alice"
        assert get_path(document, "author.stats.karma") == 7

    def test_get_missing_returns_default(self):
        assert get_path({"a": 1}, "b") is None
        assert get_path({"a": 1}, "b.c", default=0) == 0

    def test_get_array_element(self):
        document = {"comments": [{"text": "first"}, {"text": "second"}]}
        assert get_path(document, "comments.1.text") == "second"
        assert get_path(document, "comments.5.text") is None

    def test_has_path(self):
        document = {"a": {"b": None}}
        assert has_path(document, "a.b")
        assert not has_path(document, "a.c")

    def test_set_creates_intermediate_documents(self):
        document = {}
        set_path(document, "a.b.c", 1)
        assert document == {"a": {"b": {"c": 1}}}

    def test_set_into_array(self):
        document = {"items": [1, 2]}
        set_path(document, "items.3", 9)
        assert document["items"] == [1, 2, None, 9]

    def test_unset_existing_field(self):
        document = {"a": {"b": 1, "c": 2}}
        assert unset_path(document, "a.b") is True
        assert document == {"a": {"c": 2}}

    def test_unset_missing_field(self):
        assert unset_path({"a": 1}, "b.c") is False

    def test_deep_copy_is_independent(self):
        original = {"nested": {"list": [1, 2]}}
        clone = deep_copy(original)
        clone["nested"]["list"].append(3)
        assert original["nested"]["list"] == [1, 2]


class TestComparison:
    def test_same_type_ordering(self):
        assert compare_values(1, 2) == -1
        assert compare_values("b", "a") == 1
        assert compare_values(3.5, 3.5) == 0

    def test_cross_type_ordering_is_total(self):
        # numbers < strings < documents < arrays < booleans (coarse classes)
        assert compare_values(5, "text") == -1
        assert compare_values("text", {"a": 1}) == -1
        assert compare_values({"a": 1}, [1]) == -1
        assert compare_values([1], True) == -1

    def test_null_ordering(self):
        assert compare_values(None, None) == 0
        assert compare_values(None, 0) == -1

    def test_array_lexicographic(self):
        assert compare_values([1, 2], [1, 3]) == -1
        assert compare_values([1, 2, 3], [1, 2]) == 1
        assert compare_values([1, 2], [1, 2]) == 0

    def test_document_comparison(self):
        assert compare_values({"a": 1}, {"a": 2}) == -1
        assert compare_values({"a": 1}, {"a": 1}) == 0

    def test_bson_type_classification(self):
        assert bson_type(None) == "null"
        assert bson_type(True) == "boolean"
        assert bson_type(1) == "number"
        assert bson_type(1.5) == "number"
        assert bson_type("x") == "string"
        assert bson_type({}) == "document"
        assert bson_type([]) == "array"


class TestSortKey:
    def test_ascending_sort(self):
        documents = [{"views": 3}, {"views": 1}, {"views": 2}]
        documents.sort(key=lambda doc: sort_key(doc, [("views", 1)]))
        assert [doc["views"] for doc in documents] == [1, 2, 3]

    def test_descending_sort(self):
        documents = [{"views": 3}, {"views": 1}, {"views": 2}]
        documents.sort(key=lambda doc: sort_key(doc, [("views", -1)]))
        assert [doc["views"] for doc in documents] == [3, 2, 1]

    def test_compound_sort(self):
        documents = [
            {"category": "a", "views": 2},
            {"category": "b", "views": 1},
            {"category": "a", "views": 1},
        ]
        documents.sort(key=lambda doc: sort_key(doc, [("category", 1), ("views", -1)]))
        assert documents == [
            {"category": "a", "views": 2},
            {"category": "a", "views": 1},
            {"category": "b", "views": 1},
        ]

    def test_missing_field_sorts_first_ascending(self):
        documents = [{"views": 1}, {}]
        documents.sort(key=lambda doc: sort_key(doc, [("views", 1)]))
        assert documents[0] == {}
