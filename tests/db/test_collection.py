"""Tests for collections: CRUD, after-images, query execution."""

from __future__ import annotations

import pytest

from repro.db import Database, OperationType, Query
from repro.errors import DocumentNotFoundError, DuplicateKeyError, InvalidQueryError
from repro.db.collection import Collection


class TestCrud:
    def test_insert_and_get(self, database):
        posts = database.create_collection("posts")
        posts.insert({"_id": "p1", "title": "Hello"})
        assert posts.get("p1")["title"] == "Hello"
        assert len(posts) == 1

    def test_insert_requires_id(self, database):
        posts = database.create_collection("posts")
        with pytest.raises(InvalidQueryError):
            posts.insert({"title": "no id"})

    def test_duplicate_insert_rejected(self, database):
        posts = database.create_collection("posts")
        posts.insert({"_id": "p1"})
        with pytest.raises(DuplicateKeyError):
            posts.insert({"_id": "p1"})

    def test_get_missing_raises(self, database):
        posts = database.create_collection("posts")
        with pytest.raises(DocumentNotFoundError):
            posts.get("nope")
        assert posts.get_or_none("nope") is None

    def test_returned_documents_are_copies(self, database):
        posts = database.create_collection("posts")
        posts.insert({"_id": "p1", "tags": ["a"]})
        fetched = posts.get("p1")
        fetched["tags"].append("b")
        assert posts.get("p1")["tags"] == ["a"]

    def test_update_partial(self, database):
        posts = database.create_collection("posts")
        posts.insert({"_id": "p1", "views": 1, "title": "Hello"})
        updated = posts.update("p1", {"$inc": {"views": 1}})
        assert updated["views"] == 2
        assert updated["title"] == "Hello"

    def test_update_missing_raises(self, database):
        posts = database.create_collection("posts")
        with pytest.raises(DocumentNotFoundError):
            posts.update("nope", {"$set": {"a": 1}})

    def test_replace_keeps_id(self, database):
        posts = database.create_collection("posts")
        posts.insert({"_id": "p1", "title": "Old", "views": 3})
        replaced = posts.replace("p1", {"title": "New"})
        assert replaced == {"_id": "p1", "title": "New"}

    def test_delete(self, database):
        posts = database.create_collection("posts")
        posts.insert({"_id": "p1"})
        deleted = posts.delete("p1")
        assert deleted["_id"] == "p1"
        assert "p1" not in posts
        with pytest.raises(DocumentNotFoundError):
            posts.delete("p1")

    def test_version_counter_increments(self, database):
        posts = database.create_collection("posts")
        posts.insert({"_id": "p1", "views": 0})
        assert posts.version("p1") == 1
        posts.update("p1", {"$inc": {"views": 1}})
        posts.update("p1", {"$inc": {"views": 1}})
        assert posts.version("p1") == 3

    def test_versions_never_recycle_across_delete_and_reinsert(self, database):
        """A version pins one content forever: re-inserting a deleted _id must
        continue the sequence, or ETags (and every version-keyed cache/session
        memo) would alias different content."""
        from repro.rest.etags import etag_for_version

        posts = database.create_collection("posts")
        posts.insert({"_id": "p1", "body": "original"})
        posts.update("p1", {"$set": {"body": "edited"}})
        old_version = posts.version("p1")
        old_etag = etag_for_version("posts", "p1", old_version)
        posts.delete("p1")
        posts.insert({"_id": "p1", "body": "reincarnated"})
        new_version = posts.version("p1")
        assert new_version == old_version + 1
        assert etag_for_version("posts", "p1", new_version) != old_etag

    def test_versions_never_recycle_across_drop_and_recreate(self, database):
        posts = database.create_collection("posts")
        posts.insert({"_id": "p1"})
        posts.update("p1", {"$set": {"x": 1}})
        posts.insert({"_id": "p2"})
        posts.delete("p2")
        database.drop_collection("posts")
        recreated = database.create_collection("posts")
        recreated.insert({"_id": "p1"})
        recreated.insert({"_id": "p2"})
        assert recreated.version("p1") == 3  # continued past the dropped v2
        assert recreated.version("p2") == 2  # continued past the tombstoned v1
        assert database.create_collection("fresh").insert({"_id": "p1"}) is not None
        assert database.collection("fresh").version("p1") == 1  # other names unaffected


class TestChangeEvents:
    def test_insert_emits_after_image(self, database):
        events = []
        database.subscribe(events.append)
        posts = database.create_collection("posts")
        posts.insert({"_id": "p1", "views": 1})
        assert len(events) == 1
        event = events[0]
        assert event.operation == OperationType.INSERT
        assert event.before is None
        assert event.after == {"_id": "p1", "views": 1}

    def test_update_carries_before_and_after(self, database):
        events = []
        posts = database.create_collection("posts")
        posts.insert({"_id": "p1", "views": 1})
        database.subscribe(events.append)
        posts.update("p1", {"$inc": {"views": 4}})
        event = events[0]
        assert event.operation == OperationType.UPDATE
        assert event.before["views"] == 1
        assert event.after["views"] == 5

    def test_delete_has_no_after_image(self, database):
        events = []
        posts = database.create_collection("posts")
        posts.insert({"_id": "p1"})
        database.subscribe(events.append)
        posts.delete("p1")
        assert events[0].operation == OperationType.DELETE
        assert events[0].after is None

    def test_events_have_increasing_sequence(self, database):
        events = []
        database.subscribe(events.append)
        posts = database.create_collection("posts")
        for index in range(5):
            posts.insert({"_id": f"p{index}"})
        sequences = [event.sequence for event in events]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == 5

    def test_after_images_are_immutable_snapshots(self, database):
        events = []
        database.subscribe(events.append)
        posts = database.create_collection("posts")
        posts.insert({"_id": "p1", "tags": ["a"]})
        posts.update("p1", {"$push": {"tags": "b"}})
        assert events[0].after["tags"] == ["a"]


class TestFind:
    def test_find_with_predicate(self, posts):
        result = posts.find(Query("posts", {"tags": "example"}))
        assert len(result) == 10
        assert all("example" in doc["tags"] for doc in result)

    def test_find_wrong_collection_rejected(self, posts):
        with pytest.raises(InvalidQueryError):
            posts.find(Query("users", {}))

    def test_find_sort_limit_offset(self, posts):
        query = Query("posts", {"tags": "example"}, sort=[("views", -1)], limit=3, offset=1)
        result = posts.find(query)
        views = [doc["views"] for doc in result]
        assert views == [16, 14, 12]

    def test_find_without_sort_is_deterministic(self, posts):
        query = Query("posts", {"tags": "example"})
        assert posts.find(query) == posts.find(query)

    def test_find_uses_index_when_available(self, database):
        collection = database.create_collection("items")
        collection.create_index("category")
        for index in range(100):
            collection.insert({"_id": f"i{index}", "category": index % 10})
        result = collection.find(Query("items", {"category": 3}))
        assert len(result) == 10
        assert all(doc["category"] == 3 for doc in result)

    def test_count(self, posts):
        assert posts.count() == 20
        assert posts.count(Query("posts", {"tags": "example"})) == 10

    def test_ids_sorted(self, database):
        collection = database.create_collection("c")
        collection.insert({"_id": "b"})
        collection.insert({"_id": "a"})
        assert collection.ids() == ["a", "b"]
