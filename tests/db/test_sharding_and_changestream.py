"""Tests for hash sharding and the change stream container."""

from __future__ import annotations

import pytest

from repro.db.changestream import ChangeEvent, ChangeStream, OperationType
from repro.db.sharding import HashSharder


class TestHashSharder:
    def test_placement_is_deterministic(self):
        sharder = HashSharder(4)
        assert sharder.shard_for("posts", "p1") == sharder.shard_for("posts", "p1")

    def test_placement_in_range(self):
        sharder = HashSharder(3)
        for index in range(100):
            assert 0 <= sharder.shard_for("posts", f"p{index}") < 3

    def test_rejects_non_positive_shards(self):
        with pytest.raises(ValueError):
            HashSharder(0)

    def test_counters_track_reads_and_writes(self):
        sharder = HashSharder(2)
        shard = sharder.record_write("posts", "p1")
        sharder.record_read("posts", "p1")
        stats = sharder.statistics()
        assert stats[shard].writes == 1
        assert stats[shard].reads == 1
        assert stats[shard].operations == 2

    def test_balanced_distribution(self):
        sharder = HashSharder(4)
        for index in range(2000):
            sharder.record_write("posts", f"doc-{index}")
        assert sharder.imbalance() < 1.25

    def test_imbalance_of_idle_sharder_is_one(self):
        assert HashSharder(3).imbalance() == 1.0


def _event(sequence: int, document_id: str = "d1") -> ChangeEvent:
    return ChangeEvent(
        sequence=sequence,
        operation=OperationType.UPDATE,
        collection="posts",
        document_id=document_id,
        before={"_id": document_id},
        after={"_id": document_id, "v": sequence},
        timestamp=float(sequence),
    )


class TestChangeStream:
    def test_publish_delivers_to_listeners(self):
        stream = ChangeStream()
        received = []
        stream.subscribe(received.append)
        event = _event(stream.next_sequence())
        stream.publish(event)
        assert received == [event]

    def test_unsubscribe(self):
        stream = ChangeStream()
        received = []
        unsubscribe = stream.subscribe(received.append)
        unsubscribe()
        stream.publish(_event(stream.next_sequence()))
        assert received == []

    def test_replay_since(self):
        stream = ChangeStream()
        events = [_event(stream.next_sequence(), f"d{index}") for index in range(5)]
        for event in events:
            stream.publish(event)
        replayed = stream.replay_since(events[2].sequence)
        assert [event.document_id for event in replayed] == ["d3", "d4"]

    def test_history_limit_truncates(self):
        stream = ChangeStream(history_limit=3)
        for index in range(10):
            stream.publish(_event(stream.next_sequence(), f"d{index}"))
        assert len(stream) == 3
        assert [event.document_id for event in stream.history] == ["d7", "d8", "d9"]

    def test_history_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            ChangeStream(history_limit=0)

    def test_after_image_alias(self):
        event = _event(1)
        assert event.after_image == event.after
