"""Tests for hash sharding and the change stream container."""

from __future__ import annotations

import pytest

from repro.db.changestream import ChangeEvent, ChangeStream, OperationType
from repro.db.sharding import HashSharder, ShardStatisticsTable


class TestHashSharder:
    def test_placement_is_deterministic(self):
        sharder = HashSharder(4)
        assert sharder.shard_for("posts", "p1") == sharder.shard_for("posts", "p1")

    def test_placement_in_range(self):
        sharder = HashSharder(3)
        for index in range(100):
            assert 0 <= sharder.shard_for("posts", f"p{index}") < 3

    def test_rejects_non_positive_shards(self):
        with pytest.raises(ValueError):
            HashSharder(0)

    def test_counters_track_reads_and_writes(self):
        sharder = HashSharder(2)
        shard = sharder.record_write("posts", "p1")
        sharder.record_read("posts", "p1")
        stats = sharder.statistics()
        assert stats[shard].writes == 1
        assert stats[shard].reads == 1
        assert stats[shard].operations == 2

    def test_balanced_distribution(self):
        sharder = HashSharder(4)
        for index in range(2000):
            sharder.record_write("posts", f"doc-{index}")
        assert sharder.imbalance() < 1.25

    def test_imbalance_of_idle_sharder_is_one(self):
        assert HashSharder(3).imbalance() == 1.0


def _event(sequence: int, document_id: str = "d1") -> ChangeEvent:
    return ChangeEvent(
        sequence=sequence,
        operation=OperationType.UPDATE,
        collection="posts",
        document_id=document_id,
        before={"_id": document_id},
        after={"_id": document_id, "v": sequence},
        timestamp=float(sequence),
    )


class TestShardStatisticsTable:
    def test_counts_reads_and_writes_per_shard(self):
        table = ShardStatisticsTable(range(3))
        table.record_read(0)
        table.record_write(0)
        table.record_write(1, count=5)
        assert table.get(0).operations == 2
        assert table.get(1).writes == 5
        assert table.get(2).operations == 0

    def test_imbalance_of_idle_table_is_one(self):
        assert ShardStatisticsTable(range(4)).imbalance() == 1.0
        assert ShardStatisticsTable().imbalance() == 1.0

    def test_imbalance_is_max_over_mean(self):
        table = ShardStatisticsTable(range(2))
        table.record_write(0, count=3)
        table.record_write(1, count=1)
        assert table.imbalance() == pytest.approx(1.5)

    def test_imbalance_restricts_to_requested_shards(self):
        table = ShardStatisticsTable(range(3))
        table.record_write(0, count=8)
        table.record_write(1, count=2)
        table.record_write(2, count=2)
        assert table.imbalance([1, 2]) == pytest.approx(1.0)

    def test_readded_shard_starts_with_fresh_counters(self):
        table = ShardStatisticsTable(range(2))
        table.record_write(1, count=7)
        table.remove_shard(1)
        table.add_shard(1)
        assert table.get(1).operations == 0

    def test_statistics_order_follows_requested_ids(self):
        table = ShardStatisticsTable([2, 0, 1])
        assert [stats.shard_id for stats in table.statistics()] == [0, 1, 2]
        assert [stats.shard_id for stats in table.statistics([2, 0])] == [2, 0]

    def test_hash_sharder_delegates_to_the_shared_table(self):
        sharder = HashSharder(4)
        assert isinstance(sharder._table, ShardStatisticsTable)
        for index in range(100):
            sharder.record_write("posts", f"doc-{index}")
        assert sharder.imbalance() == sharder._table.imbalance()


class TestChangeStream:
    def test_publish_delivers_to_listeners(self):
        stream = ChangeStream()
        received = []
        stream.subscribe(received.append)
        event = _event(stream.next_sequence())
        stream.publish(event)
        assert received == [event]

    def test_unsubscribe(self):
        stream = ChangeStream()
        received = []
        unsubscribe = stream.subscribe(received.append)
        unsubscribe()
        stream.publish(_event(stream.next_sequence()))
        assert received == []

    def test_replay_since(self):
        stream = ChangeStream()
        events = [_event(stream.next_sequence(), f"d{index}") for index in range(5)]
        for event in events:
            stream.publish(event)
        replayed = stream.replay_since(events[2].sequence)
        assert [event.document_id for event in replayed] == ["d3", "d4"]

    def test_history_limit_truncates(self):
        stream = ChangeStream(history_limit=3)
        for index in range(10):
            stream.publish(_event(stream.next_sequence(), f"d{index}"))
        assert len(stream) == 3
        assert [event.document_id for event in stream.history] == ["d7", "d8", "d9"]

    def test_history_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            ChangeStream(history_limit=0)

    def test_after_image_alias(self):
        event = _event(1)
        assert event.after_image == event.after
