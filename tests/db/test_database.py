"""Tests for the database facade: collections, change stream, sharding stats."""

from __future__ import annotations

import pytest

from repro.db import Database, Query
from repro.errors import CollectionNotFoundError


class TestCollections:
    def test_create_collection_is_idempotent(self, database):
        first = database.create_collection("posts")
        second = database.create_collection("posts")
        assert first is second
        assert database.collection_names() == ["posts"]

    def test_collection_lookup_requires_existence(self, database):
        with pytest.raises(CollectionNotFoundError):
            database.collection("missing")
        assert not database.has_collection("missing")

    def test_drop_collection(self, database):
        database.create_collection("posts")
        assert database.drop_collection("posts") is True
        assert database.drop_collection("posts") is False
        assert database.collection_names() == []


class TestConvenienceCrud:
    def test_insert_get_update_delete(self, database):
        database.insert("posts", {"_id": "p1", "views": 1})
        assert database.get("posts", "p1")["views"] == 1
        database.update("posts", "p1", {"$inc": {"views": 1}})
        assert database.get("posts", "p1")["views"] == 2
        database.delete("posts", "p1")
        assert database.collection("posts").get_or_none("p1") is None

    def test_find_routes_to_collection(self, database):
        database.insert("posts", {"_id": "p1", "category": "a"})
        database.insert("posts", {"_id": "p2", "category": "b"})
        result = database.find(Query("posts", {"category": "a"}))
        assert [doc["_id"] for doc in result] == ["p1"]

    def test_counts(self, database):
        database.insert("a", {"_id": "1"})
        database.insert("b", {"_id": "1"})
        database.update("a", "1", {"$set": {"x": 1}})
        database.get("a", "1")
        assert database.total_documents() == 2
        assert database.total_writes() == 3
        assert database.total_reads() >= 1


class TestChangeStreamIntegration:
    def test_replay_since_returns_newer_events(self, database):
        database.insert("posts", {"_id": "p1"})
        marker = database.change_stream.last_sequence
        database.insert("posts", {"_id": "p2"})
        database.insert("posts", {"_id": "p3"})
        replayed = database.replay_since(marker)
        assert [event.document_id for event in replayed] == ["p2", "p3"]

    def test_all_collections_share_one_stream(self, database):
        events = []
        database.subscribe(events.append)
        database.insert("a", {"_id": "1"})
        database.insert("b", {"_id": "2"})
        assert [event.collection for event in events] == ["a", "b"]

    def test_unsubscribe_stops_delivery(self, database):
        events = []
        unsubscribe = database.subscribe(events.append)
        database.insert("a", {"_id": "1"})
        unsubscribe()
        database.insert("a", {"_id": "2"})
        assert len(events) == 1


class TestSharding:
    def test_shard_statistics_accumulate(self, database):
        for index in range(50):
            database.insert("posts", {"_id": f"p{index}"})
        for index in range(50):
            database.get("posts", f"p{index}")
        stats = database.sharder.statistics()
        assert sum(shard.writes for shard in stats) == 50
        assert sum(shard.reads for shard in stats) == 50

    def test_hash_sharding_is_reasonably_balanced(self, database):
        for index in range(400):
            database.insert("posts", {"_id": f"p{index}"})
        assert database.sharder.imbalance() < 1.5
