"""Cross-shard query scatter/gather: merge correctness and header merging."""

from __future__ import annotations

import pytest

from repro.clock import VirtualClock
from repro.cluster import ClusterClient, QuaestorCluster
from repro.core import QuaestorConfig, QuaestorServer
from repro.db import Database, Query
from repro.invalidb import AdmissionTicket, InvaliDBCluster
from repro.rest.messages import StatusCode
from repro.ttl.static import StaticTTLEstimator

DOCUMENTS = [
    {
        "_id": f"doc-{index:03d}",
        "category": index % 5,
        "views": (index * 37) % 101,
        "tags": ["example"] if index % 2 == 0 else ["other"],
    }
    for index in range(60)
]


def build_cluster(num_shards: int = 4, clock: VirtualClock = None) -> QuaestorCluster:
    clock = clock if clock is not None else VirtualClock()
    cluster = QuaestorCluster(num_shards=num_shards, clock=clock, matching_nodes=2)
    facade = ClusterClient(cluster)
    for document in DOCUMENTS:
        facade.handle_insert("posts", dict(document))
    return cluster


def build_reference(clock: VirtualClock = None) -> QuaestorServer:
    clock = clock if clock is not None else VirtualClock()
    database = Database(clock=clock)
    server = QuaestorServer(database, invalidb=InvaliDBCluster(matching_nodes=2))
    for document in DOCUMENTS:
        server.handle_insert("posts", dict(document))
    return server


QUERIES = [
    Query("posts", {"category": 2}),
    Query("posts", {"views": {"$gt": 50}}),
    Query("posts", {}, sort=(("views", -1), ("_id", 1)), limit=7),
    Query("posts", {"tags": "example"}, sort=(("views", 1),), limit=5, offset=3),
    Query("posts", {"category": {"$in": [0, 4]}}, offset=10),
    Query("posts", {"category": 99}),  # empty result
]


class TestMergeCorrectness:
    @pytest.mark.parametrize("query", QUERIES, ids=[q.cache_key for q in QUERIES])
    def test_merged_result_matches_single_node(self, query):
        cluster = build_cluster()
        reference = build_reference()

        merged = ClusterClient(cluster).handle_query(query)
        expected = reference.handle_query(query)

        assert merged.status == StatusCode.OK
        assert merged.body["ids"] == expected.body["ids"]
        if "documents" in expected.body:
            assert merged.body["documents"] == expected.body["documents"]
        assert merged.body["representation"] == expected.body["representation"]

    def test_merged_result_is_identical_for_any_shard_count(self):
        query = Query("posts", {}, sort=(("views", -1),), limit=9, offset=2)
        results = [
            ClusterClient(build_cluster(num_shards=shards)).handle_query(query).body["ids"]
            for shards in (1, 2, 4, 8)
        ]
        assert all(ids == results[0] for ids in results)

    def test_tied_sort_keys_window_identically_on_any_topology(self):
        # Regression: with tied sort keys the window must not depend on
        # insertion or shard-concatenation order -- ties break by _id.
        docs = [{"_id": f"tied-{i:02d}", "views": 5} for i in range(12)]
        query = Query("tied", {}, sort=(("views", 1),), limit=3)

        reference = build_reference()
        for doc in docs:
            reference.handle_insert("tied", dict(doc))
        expected = reference.handle_query(query).body["ids"]

        for shards in (1, 2, 4):
            cluster = build_cluster(num_shards=shards)
            facade = ClusterClient(cluster)
            for doc in docs:
                facade.handle_insert("tied", dict(doc))
            assert facade.handle_query(query).body["ids"] == expected, shards

    def test_missing_collection_raises_like_single_node(self):
        from repro.errors import CollectionNotFoundError

        cluster = build_cluster()
        with pytest.raises(CollectionNotFoundError):
            ClusterClient(cluster).handle_query(Query("nope", {}))


class TestCacheControlMerging:
    def test_min_ttl_wins_across_shards(self):
        cluster = build_cluster(num_shards=4)
        # Distinct fixed TTLs per shard: the merged header must carry the
        # smallest one (no cache may outlive the least durable sub-result).
        for shard, ttl in zip(cluster.shards, (40.0, 10.0, 80.0, 25.0)):
            shard.server.ttl_estimator = StaticTTLEstimator(ttl=ttl)

        response = ClusterClient(cluster).handle_query(Query("posts", {"category": 1}))
        assert response.is_cacheable
        assert response.ttl_for(shared=False) == pytest.approx(10.0)
        cdn_factor = cluster.config.cdn_ttl_factor
        assert response.ttl_for(shared=True) == pytest.approx(10.0 * cdn_factor)

    def test_one_uncacheable_shard_makes_the_merge_uncacheable(self):
        cluster = build_cluster(num_shards=3)
        # Shard 1 rejects the query at admission (capacity exhausted).
        cluster.shards[1].server.capacity.probe = lambda key, result_size=0: AdmissionTicket(
            key, result_size, admitted=False
        )

        response = ClusterClient(cluster).handle_query(Query("posts", {"category": 1}))
        assert not response.is_cacheable
        assert response.ttl_for(shared=False) == 0.0
        # The documents are still served, just not cacheable.
        assert response.body["documents"]

    def test_merged_response_carries_a_merged_etag(self):
        cluster = build_cluster()
        query = Query("posts", {"category": 3})
        first = ClusterClient(cluster).handle_query(query)
        second = ClusterClient(cluster).handle_query(query)
        assert first.etag is not None
        assert first.etag == second.etag  # deterministic across identical states


class TestCrossShardInvalidation:
    def test_write_on_any_shard_flags_the_merged_query(self):
        clock = VirtualClock()
        cluster = build_cluster(num_shards=4, clock=clock)
        facade = ClusterClient(cluster)
        query = Query("posts", {"category": 2})

        facade.handle_query(query)
        before = facade.get_bloom_filter()
        assert not before.contains(query.cache_key)

        # Update a member record (wherever it lives) so the result changes.
        member_id = facade.handle_query(query).body["ids"][0]
        facade.handle_update("posts", member_id, {"$set": {"category": 0}})

        after = facade.get_bloom_filter()
        assert after.contains(query.cache_key)

    def test_offset_window_invalidations_are_not_missed(self):
        # Regression: the per-shard InvaliDB registration must use the
        # scatter window (offset 0), not the client's offset.  A document in
        # the *global* window whose shard-local rank lies below the offset
        # would otherwise never trigger a notification, and the merged cached
        # result would serve stale for its full TTL.
        clock = VirtualClock()
        cluster = build_cluster(num_shards=4, clock=clock)
        facade = ClusterClient(cluster)
        query = Query("posts", {}, sort=(("views", -1),), limit=5, offset=5)

        window_ids = facade.handle_query(query).body["ids"]
        assert len(window_ids) == 5

        # Pick a window member whose local rank on its shard is below the
        # offset (with 4 shards and a global rank < 10, one always exists).
        victim = None
        for document_id in window_ids:
            shard = cluster.shards[cluster.router.shard_for_record("posts", document_id)]
            local = shard.database.find(Query("posts", {}, sort=(("views", -1),)))
            local_rank = [str(doc["_id"]) for doc in local].index(document_id)
            if local_rank < query.offset:
                victim = document_id
                break
        assert victim is not None, "test setup must yield a low-local-rank window member"

        facade.handle_update("posts", victim, {"$set": {"category": 77}})
        assert facade.get_bloom_filter().contains(query.cache_key), (
            "content change inside the global window must invalidate the merged query"
        )

    def test_tied_window_change_invalidates_everywhere(self):
        # Regression: InvaliDB's stateful window must order ties exactly like
        # the served result (total_sort_key), otherwise a new tied document
        # entering the visible window never produces a notification and the
        # cached window stays stale for its full TTL.
        for shards in (1, 4):
            clock = VirtualClock()
            cluster = QuaestorCluster(num_shards=shards, clock=clock, matching_nodes=2)
            facade = ClusterClient(cluster)
            for document_id in ("b", "c", "d"):
                facade.handle_insert("tied", {"_id": document_id, "views": 5})
            query = Query("tied", {}, sort=(("views", 1),), limit=2)
            assert facade.handle_query(query).body["ids"] == ["b", "c"]

            # 'a' ties on views but enters the window by _id order.
            facade.handle_insert("tied", {"_id": "a", "views": 5})
            assert facade.get_bloom_filter().contains(query.cache_key), shards
            assert facade.handle_query(query).body["ids"] == ["a", "b"], shards

    def test_union_bloom_filter_sees_invalidations_from_all_shards(self):
        clock = VirtualClock()
        cluster = build_cluster(num_shards=4, clock=clock)
        facade = ClusterClient(cluster)

        # Touch one record per shard so every shard issues a cacheable read,
        # then invalidate them all; the union filter must contain every key.
        per_shard_ids = {}
        for document in DOCUMENTS:
            shard = cluster.router.shard_for_record("posts", document["_id"])
            per_shard_ids.setdefault(shard, document["_id"])
            if len(per_shard_ids) == cluster.num_shards:
                break
        assert len(per_shard_ids) == cluster.num_shards

        for document_id in per_shard_ids.values():
            facade.handle_read("posts", document_id)
            facade.handle_update("posts", document_id, {"$inc": {"views": 1}})

        union = facade.get_bloom_filter()
        from repro.db.query import record_key

        for document_id in per_shard_ids.values():
            assert union.contains(record_key("posts", document_id))
