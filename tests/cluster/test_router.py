"""Shard router tests: distribution uniformity and routing stability."""

from __future__ import annotations

import pytest

from repro.cluster.router import ShardRouter
from repro.db.query import record_key
from repro.db.sharding import ConsistentHashRing
from repro.workloads.operations import Operation, OperationType


def keys(count: int) -> list:
    return [record_key("posts", f"doc-{index}") for index in range(count)]


class TestDistributionUniformity:
    def test_sequential_keys_spread_evenly_over_shards(self):
        router = ShardRouter(num_shards=8)
        counts = router.distribution(keys(40_000))
        mean = 40_000 / 8
        # Consistent hashing with 64 vnodes lands each shard well within a
        # factor of two of the fair share even for adversarially similar keys.
        for shard_id, count in counts.items():
            assert 0.5 * mean < count < 2.0 * mean, (shard_id, count)

    def test_every_shard_receives_keys(self):
        router = ShardRouter(num_shards=4)
        counts = router.distribution(keys(5_000))
        assert set(counts) == {0, 1, 2, 3}
        assert all(count > 0 for count in counts.values())

    def test_placement_is_deterministic(self):
        first = ShardRouter(num_shards=4)
        second = ShardRouter(num_shards=4)
        for key in keys(500):
            assert first.shard_for_key(key) == second.shard_for_key(key)


class TestRoutingStability:
    def test_removing_a_shard_only_moves_its_own_keys(self):
        ring = ConsistentHashRing(range(8))
        sample = keys(5_000)
        before = {key: ring.shard_for(key) for key in sample}

        ring.remove_shard(3)
        after = {key: ring.shard_for(key) for key in sample}

        for key in sample:
            if before[key] != 3:
                # Keys not owned by the removed shard must not move at all.
                assert after[key] == before[key]
            else:
                assert after[key] != 3

    def test_adding_a_shard_only_steals_keys_for_itself(self):
        ring = ConsistentHashRing(range(8))
        sample = keys(5_000)
        before = {key: ring.shard_for(key) for key in sample}

        ring.add_shard(8)
        after = {key: ring.shard_for(key) for key in sample}

        moved = {key for key in sample if after[key] != before[key]}
        assert moved, "a ninth shard must take over some keys"
        assert all(after[key] == 8 for key in moved)
        # Roughly 1/9 of the keys should move (well below the 1/2 a modulo
        # placement would reshuffle when going from 8 to 9 shards).
        assert len(moved) < 0.25 * len(sample)

    def test_add_then_remove_restores_the_original_placement(self):
        ring = ConsistentHashRing(range(4))
        sample = keys(2_000)
        before = {key: ring.shard_for(key) for key in sample}
        ring.add_shard(4)
        ring.remove_shard(4)
        assert {key: ring.shard_for(key) for key in sample} == before

    def test_remove_unknown_shard_raises(self):
        ring = ConsistentHashRing(range(2))
        with pytest.raises(KeyError):
            ring.remove_shard(9)

    def test_empty_ring_rejects_placement(self):
        ring = ConsistentHashRing()
        with pytest.raises(ValueError):
            ring.shard_for("record:posts/doc-1")


class TestOperationRouting:
    def test_record_operations_route_to_owning_shard(self):
        router = ShardRouter(num_shards=4)
        operation = Operation(
            type=OperationType.UPDATE,
            collection="posts",
            document_id="doc-7",
            payload={"$inc": {"views": 1}},
        )
        assert router.shard_for_operation(operation) == router.shard_for_record(
            "posts", "doc-7"
        )

    def test_queries_have_no_single_owner(self):
        from repro.db.query import Query

        router = ShardRouter(num_shards=4)
        operation = Operation(
            type=OperationType.QUERY, collection="posts", query=Query("posts", {})
        )
        with pytest.raises(ValueError):
            router.shard_for_operation(operation)

    def test_group_writes_preserves_order_and_positions(self):
        router = ShardRouter(num_shards=4)
        operations = [
            Operation(
                type=OperationType.UPDATE,
                collection="posts",
                document_id=f"doc-{index}",
                payload={"$inc": {"views": 1}},
            )
            for index in range(50)
        ]
        grouped = router.group_writes(operations)
        seen = sorted(index for batch in grouped.values() for index, _op in batch)
        assert seen == list(range(50))
        for shard_id, batch in grouped.items():
            indexes = [index for index, _op in batch]
            assert indexes == sorted(indexes), "per-shard order must follow request order"
            for _index, operation in batch:
                assert router.shard_for_operation(operation) == shard_id

    def test_group_writes_rejects_reads(self):
        router = ShardRouter(num_shards=2)
        read = Operation(type=OperationType.READ, collection="posts", document_id="doc-1")
        with pytest.raises(ValueError):
            router.group_writes([read])

    def test_readded_shard_starts_with_fresh_counters(self):
        router = ShardRouter(num_shards=2)
        for index in range(100):
            router.record_write("posts", f"doc-{index}")
        router.remove_shard(1)
        router.add_shard(1)
        by_shard = {stats.shard_id: stats.operations for stats in router.statistics()}
        assert by_shard[1] == 0, "pre-removal traffic must not resurrect"

    def test_routing_statistics_track_imbalance(self):
        router = ShardRouter(num_shards=2)
        assert router.imbalance() == 1.0
        for index in range(200):
            router.record_read("posts", f"doc-{index}")
            router.record_write("posts", f"doc-{index}")
        totals = {stats.shard_id: stats.operations for stats in router.statistics()}
        assert sum(totals.values()) == 400
        assert router.imbalance() < 2.0

    def test_router_uses_the_shared_statistics_table(self):
        """Router and HashSharder imbalance come from one helper (no drift)."""
        from repro.db.sharding import ShardStatisticsTable

        router = ShardRouter(num_shards=3)
        assert isinstance(router._statistics, ShardStatisticsTable)
        for index in range(120):
            router.record_write("posts", f"doc-{index}")
        assert router.imbalance() == router._statistics.imbalance(router.shard_ids())


class TestRuntimeMembership:
    """Runtime shard removal and re-addition at the *router* level.

    Failover (repro.replication) and elastic scaling both need the router to
    take a shard out of rotation and bring it back while requests are in
    flight; the regression asserted here is that only the departed shard's
    key ranges ever move.
    """

    def test_remove_and_readd_moves_only_the_departed_shards_ranges(self):
        router = ShardRouter(num_shards=8)
        sample = keys(5_000)
        before = {key: router.shard_for_key(key) for key in sample}

        router.remove_shard(5)
        during = {key: router.shard_for_key(key) for key in sample}
        for key in sample:
            if before[key] != 5:
                assert during[key] == before[key], "only shard 5's keys may move"
            else:
                assert during[key] != 5

        router.add_shard(5)
        after = {key: router.shard_for_key(key) for key in sample}
        # Virtual-node positions are a pure hash of (shard, replica), so a
        # re-added shard reclaims exactly its old ranges: full round trip.
        assert after == before

    def test_membership_changes_are_reflected_in_shard_ids(self):
        router = ShardRouter(num_shards=4)
        assert router.shard_ids() == [0, 1, 2, 3]
        router.remove_shard(2)
        assert router.shard_ids() == [0, 1, 3]
        assert router.num_shards == 3
        router.add_shard(2)
        assert router.shard_ids() == [0, 1, 2, 3]

    def test_routing_statistics_survive_other_shards_departure(self):
        router = ShardRouter(num_shards=3)
        # Route traffic, then remove an unrelated shard: surviving counters
        # must be untouched (imbalance stays well-defined).
        for index in range(300):
            router.record_read("posts", f"doc-{index}")
        totals_before = {
            stats.shard_id: stats.operations for stats in router.statistics()
        }
        victim = 0
        router.remove_shard(victim)
        for stats in router.statistics():
            assert stats.operations == totals_before[stats.shard_id]

    def test_add_shard_is_idempotent(self):
        router = ShardRouter(num_shards=2)
        router.add_shard(1)  # already present: no-op
        assert router.shard_ids() == [0, 1]
