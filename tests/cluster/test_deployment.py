"""Sharded deployment end-to-end: unchanged SDK, batching, metrics, simulation."""

from __future__ import annotations

import pytest

from repro.caching import InvalidationCache
from repro.clock import VirtualClock
from repro.client import QuaestorClient
from repro.cluster import ClusterClient, QuaestorCluster, aggregate_statistics
from repro.db import Query
from repro.errors import UnsupportedOperationError
from repro.workloads.operations import Operation, OperationType


@pytest.fixture
def sharded_deployment():
    """A four-shard fleet with a shared CDN and one connected, unmodified SDK."""
    clock = VirtualClock()
    cluster = QuaestorCluster(num_shards=4, clock=clock, matching_nodes=2)
    facade = ClusterClient(cluster)
    cdn = InvalidationCache("cdn", clock)
    facade.register_purge_target(cdn)
    client = QuaestorClient(facade, cdn=cdn, clock=clock, refresh_interval=10.0)
    client.connect()
    for index in range(40):
        client.insert(
            "posts",
            {
                "_id": f"post-{index}",
                "tags": ["example"] if index % 2 == 0 else ["other"],
                "views": index,
            },
        )
    return {"clock": clock, "cluster": cluster, "facade": facade, "cdn": cdn, "client": client}


class TestUnchangedClientSDK:
    def test_query_caching_and_bounded_staleness_work_end_to_end(self, sharded_deployment):
        clock = sharded_deployment["clock"]
        client = sharded_deployment["client"]
        query = Query("posts", {"tags": "example"})

        first = client.query(query)
        assert first.level == "origin"
        assert len(first.value) == 20

        second = client.query(query)
        assert second.level == "client", "repeat query must be a client cache hit"

        # A write on some shard changes the result; within the staleness bound
        # the client may still serve the old copy, after the EBF refresh it
        # must revalidate and see the new result.
        client.update("posts", "post-1", {"$set": {"tags": ["example", "other"]}})
        clock.advance(11.0)
        fresh = client.query(query)
        assert fresh.revalidated or fresh.level == "origin"
        assert len(fresh.value) == 21

    def test_record_reads_route_and_cache(self, sharded_deployment):
        client = sharded_deployment["client"]
        query = Query("posts", {"tags": "example"})
        client.query(query)  # object-list side effect caches member records
        result = client.read("posts", "post-0")
        assert result.level == "client"
        assert result.value["views"] == 0

    def test_read_your_writes_across_shards(self, sharded_deployment):
        client = sharded_deployment["client"]
        for index in range(8):
            document_id = f"post-{index}"
            client.update("posts", document_id, {"$inc": {"views": 100}})
            result = client.read("posts", document_id)
            assert result.value["views"] == index + 100

    def test_transactions_are_refused_not_miscommitted(self, sharded_deployment):
        with pytest.raises(UnsupportedOperationError):
            sharded_deployment["client"].begin_transaction()


class TestBatchedWritePropagation:
    def test_batch_responses_keep_request_order(self, sharded_deployment):
        facade = sharded_deployment["facade"]
        operations = [
            Operation(
                type=OperationType.UPDATE,
                collection="posts",
                document_id=f"post-{index}",
                payload={"$set": {"views": 1000 + index}},
            )
            for index in range(20)
        ]
        responses = facade.handle_write_batch(operations)
        assert len(responses) == 20
        for index, response in enumerate(responses):
            assert response.body["document"]["views"] == 1000 + index

    def test_batch_applies_on_owning_shards(self, sharded_deployment):
        facade = sharded_deployment["facade"]
        cluster = sharded_deployment["cluster"]
        operations = [
            Operation(
                type=OperationType.INSERT,
                collection="posts",
                document_id=f"batch-{index}",
                payload={"_id": f"batch-{index}", "tags": ["batch"], "views": 0},
            )
            for index in range(16)
        ]
        facade.handle_write_batch(operations)
        for index in range(16):
            shard = cluster.shard_for_record("posts", f"batch-{index}")
            assert shard.database.collection("posts").get(f"batch-{index}")["views"] == 0

    def test_batch_pumps_invalidations_once_per_shard(self, sharded_deployment):
        facade = sharded_deployment["facade"]
        client = sharded_deployment["client"]
        query = Query("posts", {"tags": "example"})
        client.query(query)

        operations = [
            Operation(
                type=OperationType.UPDATE,
                collection="posts",
                document_id=f"post-{index * 2}",  # members of the cached query
                payload={"$inc": {"views": 1}},
            )
            for index in range(10)
        ]
        facade.handle_write_batch(operations)
        stats = facade.statistics()
        assert stats["write_batches"] >= 1
        # The cached query must still be invalidated by the batched writes.
        assert facade.get_bloom_filter().contains(query.cache_key)

    def test_batched_inserts_route_by_payload_id(self, sharded_deployment):
        # Routing must follow the stored primary key (payload _id), so a
        # batched insert lands on the same shard a direct insert would and
        # later reads find the document.
        facade = sharded_deployment["facade"]
        cluster = sharded_deployment["cluster"]
        operation = Operation(
            type=OperationType.INSERT,
            collection="posts",
            document_id="mismatched-routing-key",
            payload={"_id": "authoritative-id", "tags": [], "views": 0},
        )
        facade.handle_write_batch([operation])
        owner = cluster.shard_for_record("posts", "authoritative-id")
        assert owner.database.collection("posts").get("authoritative-id")["views"] == 0
        response = facade.handle_read("posts", "authoritative-id")
        assert response.body["document"]["_id"] == "authoritative-id"

    def test_batched_insert_materialises_collection_fleet_wide(self, sharded_deployment):
        # Regression: a batched insert into a brand-new collection must
        # create it on every shard (like a direct insert), or later scatter
        # queries and routed reads hit missing-collection errors.
        facade = sharded_deployment["facade"]
        facade.handle_write_batch(
            [
                Operation(
                    type=OperationType.INSERT,
                    collection="events",
                    document_id="e-1",
                    payload={"_id": "e-1", "kind": "signup"},
                )
            ]
        )
        from repro.db import Query
        from repro.rest.messages import StatusCode

        assert facade.handle_query(Query("events", {})).body["ids"] == ["e-1"]
        missing = facade.handle_read("events", "nope")
        assert missing.status == StatusCode.NOT_FOUND

    def test_batch_rejects_non_write_operations(self, sharded_deployment):
        facade = sharded_deployment["facade"]
        read = Operation(type=OperationType.READ, collection="posts", document_id="post-0")
        with pytest.raises(ValueError):
            facade.handle_write_batch([read])

    def test_rejected_batch_leaves_no_state_behind(self, sharded_deployment):
        # A batch with an invalid member must fail atomically at validation:
        # no counter increment, no fleet-wide collection materialisation.
        from repro.errors import CollectionNotFoundError

        facade = sharded_deployment["facade"]
        cluster = sharded_deployment["cluster"]
        bad_batch = [
            Operation(
                type=OperationType.INSERT,
                collection="phantom",
                document_id="x",
                payload={"_id": "x"},
            ),
            Operation(type=OperationType.READ, collection="posts", document_id="post-0"),
        ]
        with pytest.raises(ValueError):
            facade.handle_write_batch(bad_batch)
        assert all(
            not shard.database.has_collection("phantom") for shard in cluster.shards
        )
        assert facade.statistics().get("cluster_write_batches", 0) == 0
        from repro.db import Query

        with pytest.raises(CollectionNotFoundError):
            facade.handle_query(Query("phantom", {}))


class TestClusterMetrics:
    def test_aggregate_sums_per_shard_counters(self, sharded_deployment):
        cluster = sharded_deployment["cluster"]
        per_shard = cluster.metrics.per_shard_statistics()
        aggregated = aggregate_statistics(list(per_shard.values()))
        assert aggregated["writes"] == sum(stats.get("writes", 0) for stats in per_shard.values())
        assert aggregated["writes"] == 40  # one insert per seeded document

    def test_statistics_include_fleet_indicators(self, sharded_deployment):
        stats = sharded_deployment["facade"].statistics()
        assert stats["shards"] == 4
        assert stats["routing_imbalance"] >= 1.0
        assert stats["writes"] >= 40

    def test_aggregate_skips_non_numeric_values(self):
        merged = aggregate_statistics([{"a": 1, "b": "text"}, {"a": 2.5, "b": "more"}])
        assert merged == {"a": 3.5}

    def test_facade_counters_do_not_clobber_shard_sums(self, sharded_deployment):
        # Batched writes increment the shards' ``writes`` but only the
        # facade's ``write_batches``; the aggregate must keep both.
        facade = sharded_deployment["facade"]
        before = facade.statistics()["writes"]
        operations = [
            Operation(
                type=OperationType.UPDATE,
                collection="posts",
                document_id=f"post-{index}",
                payload={"$inc": {"views": 1}},
            )
            for index in range(12)
        ]
        facade.handle_write_batch(operations)
        stats = facade.statistics()
        assert stats["writes"] == before + 12  # shard sums survive
        assert stats["cluster_write_batches"] == 1  # facade counters namespaced


class TestShardedSimulation:
    def test_simulation_runs_against_a_sharded_fleet(self):
        from repro.simulation.simulator import CachingMode, SimulationConfig, run_simulation
        from repro.workloads.dataset import DatasetSpec
        from repro.workloads.generator import WorkloadSpec

        config = SimulationConfig(
            mode=CachingMode.QUAESTOR,
            workload=WorkloadSpec.with_update_rate(0.1),
            dataset=DatasetSpec(num_tables=2, documents_per_table=200, queries_per_table=20),
            num_clients=4,
            connections_per_client=10,
            max_operations=800,
            duration=60.0,
            matching_nodes=2,
            origin_capacity=500.0,
            num_shards=4,
        )
        result = run_simulation(config)
        assert result.operations > 0
        assert result.throughput > 0.0
        assert result.server_statistics["shards"] == 4

    def test_single_shard_config_uses_the_classic_server(self):
        from repro.core import QuaestorServer
        from repro.simulation.simulator import SimulationConfig, Simulator
        from repro.workloads.dataset import DatasetSpec

        config = SimulationConfig(
            dataset=DatasetSpec(num_tables=1, documents_per_table=100, queries_per_table=10),
            num_clients=2,
            connections_per_client=5,
            max_operations=100,
        )
        simulator = Simulator(config)
        assert simulator.cluster is None
        assert isinstance(simulator.server, QuaestorServer)

    def test_invalid_shard_count_is_rejected(self):
        from repro.errors import ConfigurationError
        from repro.simulation.simulator import SimulationConfig

        with pytest.raises(ConfigurationError):
            SimulationConfig(num_shards=0)
