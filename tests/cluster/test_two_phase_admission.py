"""Two-phase scatter admission: a rejecting shard leaves zero state anywhere.

The regression this guards: the old scatter path admitted and registered on
every shard *before* knowing whether all shards admit, so one shard rejecting
at capacity made the others occupy admission slots, InvaliDB registrations
and active-list entries for a merged result that (min-TTL wins) was never
cached.  With two-phase admission the scatter probes first and commits only
when every shard admits.
"""

from __future__ import annotations

import pytest

from repro.clock import VirtualClock
from repro.cluster import ClusterClient, QuaestorCluster
from repro.core import QuaestorConfig
from repro.db import Query

DOCUMENTS = [
    {"_id": f"doc-{index:03d}", "category": index % 4, "views": (index * 53) % 89}
    for index in range(48)
]

QUERIES = [
    Query("posts", {"category": 1}),
    Query("posts", {"views": {"$gt": 30}}, sort=(("views", -1), ("_id", 1)), limit=6),
    Query("posts", {}, limit=5, offset=2),
]


def build_cluster(num_shards: int = 4, **config_kwargs) -> QuaestorCluster:
    config = QuaestorConfig(**config_kwargs) if config_kwargs else None
    cluster = QuaestorCluster(num_shards=num_shards, clock=VirtualClock(), config=config)
    facade = ClusterClient(cluster)
    for document in DOCUMENTS:
        facade.handle_insert("posts", dict(document))
    return cluster


def saturate_shard(cluster: QuaestorCluster, shard_id: int) -> None:
    """Fill one shard's single admission slot with an undisplaceable query."""
    capacity = cluster.shards[shard_id].server.capacity
    capacity.admit("hot-query")
    for _ in range(100):
        capacity.record_read("hot-query", result_size=0)


def assert_no_bookkeeping(cluster: QuaestorCluster, cache_key: str) -> None:
    for shard in cluster.shards:
        server = shard.server
        assert not server.invalidb.is_registered(cache_key), shard.shard_id
        assert not server.capacity.is_admitted(cache_key), shard.shard_id
        assert server.active_list.get(cache_key) is None, shard.shard_id


class TestScatterAbortInvariant:
    @pytest.mark.parametrize("query", QUERIES, ids=[q.cache_key for q in QUERIES])
    @pytest.mark.parametrize("rejecting_shard", [0, 2])
    def test_one_rejecting_shard_leaves_zero_state_on_all_shards(
        self, query, rejecting_shard
    ):
        cluster = build_cluster(max_active_queries=1)
        saturate_shard(cluster, rejecting_shard)

        response = cluster.query(query)

        assert not response.is_cacheable
        assert_no_bookkeeping(cluster, query.cache_key)
        # The saturated shard keeps its original occupant untouched.
        assert cluster.shards[rejecting_shard].server.capacity.is_admitted("hot-query")

    def test_abort_is_observable_in_metrics(self):
        cluster = build_cluster(max_active_queries=1)
        saturate_shard(cluster, 1)
        query = QUERIES[0]
        cluster.query(query)

        assert cluster.counters.get("scatter_queries_aborted") == 1
        snapshot = cluster.statistics()
        assert snapshot["cluster_scatter_queries_aborted"] == 1
        assert snapshot["scatter_abort_rate"] == pytest.approx(1.0)
        # Every shard that probed successfully recorded the wasted probe.
        assert snapshot["admission_aborts"] == cluster.num_shards - 1
        assert snapshot["shard_queries_aborted"] == cluster.num_shards - 1
        assert cluster.metrics.scatter_abort_rate() == pytest.approx(1.0)

    def test_all_admitting_shards_commit_and_cache(self):
        cluster = build_cluster()
        query = QUERIES[0]
        response = cluster.query(query)

        assert response.is_cacheable
        for shard in cluster.shards:
            server = shard.server
            assert server.invalidb.is_registered(query.cache_key)
            assert server.capacity.is_admitted(query.cache_key)
            assert server.active_list.get(query.cache_key) is not None
        assert cluster.counters.get("scatter_queries_aborted") == 0
        assert cluster.statistics()["scatter_abort_rate"] == 0.0

    def test_rejection_still_serves_the_merged_documents(self):
        cluster = build_cluster(max_active_queries=1)
        saturate_shard(cluster, 0)
        query = QUERIES[0]

        rejected = cluster.query(query)
        reference = build_cluster().query(query)

        assert rejected.body["documents"] == reference.body["documents"]

    def test_later_scatter_succeeds_once_capacity_frees_up(self):
        cluster = build_cluster(max_active_queries=1)
        saturate_shard(cluster, 0)
        query = QUERIES[0]
        assert not cluster.query(query).is_cacheable

        cluster.shards[0].server.capacity.release("hot-query")
        assert cluster.query(query).is_cacheable
        assert_registered_everywhere = all(
            shard.server.invalidb.is_registered(query.cache_key)
            for shard in cluster.shards
        )
        assert assert_registered_everywhere

    def test_abort_retains_registrations_committed_by_an_earlier_scatter(self):
        """Previously cached merges must stay invalidatable after an abort.

        When a key a shard *already admitted* (an earlier scatter committed
        it) is re-scattered and another shard now rejects, the fleet-wide
        abort keeps the old shards' registrations: caches may still hold the
        earlier merged result within its TTL, and only a live InvaliDB
        registration turns writes into the invalidations the staleness bound
        depends on.
        """
        cluster = build_cluster(max_active_queries=1)
        query = QUERIES[0]
        assert cluster.query(query).is_cacheable  # committed everywhere

        # Shard 0 later loses the slot to a hotter query.
        capacity = cluster.shards[0].server.capacity
        capacity.release(query.cache_key)
        saturate_shard(cluster, 0)

        rescatter = cluster.query(query)

        assert not rescatter.is_cacheable
        for shard in cluster.shards[1:]:
            # Deliberate retention: the earlier merge may still be cached.
            assert shard.server.invalidb.is_registered(query.cache_key)
            assert shard.server.capacity.is_admitted(query.cache_key)
        assert not cluster.shards[0].server.capacity.is_admitted(query.cache_key)
        # Retained probes of already-admitted keys are not wasted work.
        assert cluster.statistics()["admission_aborts"] == 0

    def test_caching_disabled_scatter_is_not_counted_as_abort(self):
        cluster = build_cluster(cache_queries=False)
        response = cluster.query(QUERIES[0])
        assert not response.is_cacheable
        assert cluster.counters.get("scatter_queries_aborted") == 0
        assert cluster.statistics()["scatter_abort_rate"] == 0.0
