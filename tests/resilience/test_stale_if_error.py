"""SDK degraded serving: stale-if-error semantics and freshness accounting."""

from __future__ import annotations

import pytest

from repro.clock import VirtualClock
from repro.client import QuaestorClient
from repro.client.sdk import DEGRADED_LEVEL
from repro.cluster import ClusterClient, QuaestorCluster
from repro.replication import ReplicationConfig
from repro.resilience import ResilienceConfig, StaleIfErrorPolicy
from repro.simulation.latency import LatencyModel
from repro.simulation.staleness import StalenessAuditor


def build(resilience=ResilienceConfig(), replication_factor=1):
    clock = VirtualClock()
    cluster = QuaestorCluster(
        num_shards=1,
        clock=clock,
        matching_nodes=2,
        replication=ReplicationConfig(
            replication_factor=replication_factor,
            lag=LatencyModel(mean=0.01, jitter=0.0),
        ),
        resilience=resilience,
    )
    facade = ClusterClient(cluster)
    client = QuaestorClient(facade, clock=clock, refresh_interval=0.5, resilience=resilience)
    client.connect()
    facade.handle_insert("posts", {"_id": "p1", "views": 1})
    return clock, cluster, facade, client


def expire_entry(clock, client, key, past_expiry):
    """Advance the clock to ``past_expiry`` seconds beyond the entry's TTL."""
    entry = client.client_cache.peek(key)
    assert entry is not None
    clock.advance(entry.fresh_until - clock.now() + past_expiry)
    return entry


class TestStaleIfErrorServing:
    def test_serves_expired_entry_during_outage_with_degraded_marker(self):
        clock, cluster, facade, client = build()
        assert client.read("posts", "p1").level == "origin"
        expire_entry(clock, client, "record:posts/p1", past_expiry=2.0)
        cluster.crash_node(cluster.groups[0].primary_node_id)

        result = client.read("posts", "p1")
        assert result.level == DEGRADED_LEVEL
        assert result.degraded is True
        assert result.value == {"_id": "p1", "views": 1}
        assert client.counters.get("stale_if_error_serves") == 1

    def test_rejects_entries_past_the_staleness_budget(self):
        resilience = ResilienceConfig(stale_if_error=StaleIfErrorPolicy(max_staleness=3.0))
        clock, cluster, facade, client = build(resilience)
        client.read("posts", "p1")
        expire_entry(clock, client, "record:posts/p1", past_expiry=3.5)
        cluster.crash_node(cluster.groups[0].primary_node_id)

        result = client.read("posts", "p1")
        assert result.level != DEGRADED_LEVEL
        assert client.counters.get("stale_if_error_rejects") == 1
        assert client.counters.get("stale_if_error_serves") == 0

    def test_no_policy_means_plain_unavailable(self):
        resilience = ResilienceConfig(stale_if_error=None)
        clock, cluster, facade, client = build(resilience)
        client.read("posts", "p1")
        expire_entry(clock, client, "record:posts/p1", past_expiry=1.0)
        cluster.crash_node(cluster.groups[0].primary_node_id)
        result = client.read("posts", "p1")
        assert result.level != DEGRADED_LEVEL
        assert client.counters.get("stale_if_error_serves") == 0

    def test_uncached_key_cannot_be_served_degraded(self):
        clock, cluster, facade, client = build()
        facade.handle_insert("posts", {"_id": "p2", "views": 2})
        clock.advance(0.1)
        cluster.crash_node(cluster.groups[0].primary_node_id)
        result = client.read("posts", "p2")  # never cached client-side
        assert result.level != DEGRADED_LEVEL


class TestFreshnessAccounting:
    def test_degraded_serve_is_not_a_cache_hit(self):
        clock, cluster, facade, client = build()
        client.read("posts", "p1")
        expire_entry(clock, client, "record:posts/p1", past_expiry=1.0)
        cluster.crash_node(cluster.groups[0].primary_node_id)
        hits_before = client.client_cache.stats.hits
        result = client.read("posts", "p1")
        assert result.level == DEGRADED_LEVEL
        assert client.client_cache.stats.hits == hits_before

    def test_degraded_serve_does_not_whitelist_or_touch_session_state(self):
        clock, cluster, facade, client = build()
        client.read("posts", "p1")
        expire_entry(clock, client, "record:posts/p1", past_expiry=1.0)
        cluster.crash_node(cluster.groups[0].primary_node_id)
        key = "record:posts/p1"
        session_before = dict(client.session._seen_versions)
        result = client.read("posts", "p1")
        assert result.level == DEGRADED_LEVEL
        # A degraded serve must not mark the key fresh: the value is *known*
        # stale, so whitelisting it would let the next read skip the
        # revalidation the EBF demanded.
        assert key not in client.whitelist
        assert dict(client.session._seen_versions) == session_before

    def test_auditor_counts_degraded_reads_separately(self):
        auditor = StalenessAuditor()
        auditor.record_version("record:posts/p1", "v1", 0.0)
        audit = auditor.audit_read("record:posts/p1", "v1", 1.0, degraded=True)
        assert audit.degraded is True
        assert audit.stale is False  # never superseded: an availability
        assert auditor.degraded_reads == 1  # concession, not a violation
        auditor.record_version("record:posts/p1", "v2", 2.0)
        stale_audit = auditor.audit_read("record:posts/p1", "v1", 3.0, degraded=True)
        assert stale_audit.degraded and stale_audit.stale
        assert stale_audit.staleness == pytest.approx(1.0)
        assert auditor.degraded_reads == 2
        auditor.reset_counters()
        assert auditor.degraded_reads == 0
