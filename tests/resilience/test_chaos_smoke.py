"""End-to-end chaos smoke: seeded gray-failure runs, resilience on vs off.

Small, fast versions of the scenarios ``benchmarks/bench_resilience.py``
measures at full scale: for every brownout/flaky scenario the resilience
layer must improve availability (success rate) without blowing the
configured staleness budget, and seeded runs must be exactly reproducible.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultAction, FaultEvent, FaultPlan
from repro.resilience import ResilienceConfig
from repro.simulation.simulator import SimulationConfig, run_simulation


def chaos_config(fault_plan, resilience, seed=42, max_operations=3000):
    return SimulationConfig(
        num_clients=4,
        connections_per_client=50,
        matching_nodes=2,
        max_operations=max_operations,
        warmup_fraction=0.0,
        seed=seed,
        num_shards=2,
        replication_factor=2,
        fault_plan=fault_plan,
        resilience=resilience,
    )


#: Seeded runs are deterministic, so scenario summaries are computed once
#: and shared across the assertions below (keeps the smoke suite fast).
_SUMMARIES = {}


def summarize(plan, resilience):
    cache_key = (plan.name, resilience.enabled)
    if cache_key not in _SUMMARIES:
        _SUMMARIES[cache_key] = run_simulation(chaos_config(plan, resilience)).summary()
    return dict(_SUMMARIES[cache_key])


def success_rate(summary):
    return 1.0 - summary["request_error_rate"]


BROWNOUT = FaultPlan.brownout(shard=0, at=0.02, recover_at=0.4, slow_factor=5.0, drop_rate=0.3)
FLAKY = FaultPlan.flaky(shard=0, at=0.02, recover_at=0.4, drop_rate=0.45)


class TestChaosScenarios:
    @pytest.mark.parametrize(
        "plan", (BROWNOUT, FLAKY), ids=lambda plan: plan.name.split("/")[0]
    )
    def test_resilience_improves_availability(self, plan):
        off = summarize(plan, ResilienceConfig.off())
        on = summarize(plan, ResilienceConfig())
        assert success_rate(on) >= success_rate(off)
        assert on["request_error_rate"] < off["request_error_rate"]
        assert on["resilience_retries"] > 0
        assert on["resilience_retry_successes"] > 0

    @pytest.mark.parametrize(
        "plan", (BROWNOUT, FLAKY), ids=lambda plan: plan.name.split("/")[0]
    )
    def test_staleness_stays_within_the_degraded_budget(self, plan):
        resilience = ResilienceConfig()
        summary = summarize(plan, resilience)
        budget = resilience.stale_if_error.max_staleness
        assert summary["max_staleness_s"] <= budget

    def test_node_level_slow_triggers_winning_hedges(self):
        plan = FaultPlan(
            events=[
                FaultEvent(0.02, FaultAction.SLOW_SHARD, "s0:n0", magnitude=6.0),
                FaultEvent(0.5, FaultAction.RESTORE, "s0:n0"),
            ],
            name="slow-node",
        )
        on = summarize(plan, ResilienceConfig())
        off = summarize(plan, ResilienceConfig.off())
        assert on["hedged_reads"] > 0
        assert on["hedge_wins"] > 0
        # Hedging to the healthy replica beats waiting out the slow node.
        assert on["mean_read_latency_ms"] < off["mean_read_latency_ms"]

    def test_seeded_chaos_runs_are_exactly_reproducible(self):
        first = summarize(BROWNOUT, ResilienceConfig())
        second = run_simulation(chaos_config(BROWNOUT, ResilienceConfig())).summary()
        assert first == second

    def test_crash_scenarios_still_run_with_resilience_attached(self):
        plan = FaultPlan(
            events=[
                FaultEvent(0.05, FaultAction.CRASH, "shard:0"),
                FaultEvent(0.3, FaultAction.RECOVER, "shard:0"),
            ],
            name="rolling-crash",
        )
        summary = run_simulation(chaos_config(plan, ResilienceConfig())).summary()
        assert summary["faults_injected"] >= 1.0
        assert 0.0 <= summary["request_error_rate"] <= 1.0
