"""Unit tests for the frozen resilience policy objects and the breaker FSM."""

from __future__ import annotations

import random
from statistics import NormalDist

import pytest

from repro.clock import VirtualClock
from repro.errors import ConfigurationError
from repro.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerPolicy,
    CircuitBreaker,
    DeadlineBudget,
    HedgePolicy,
    ResilienceConfig,
    RetryPolicy,
    StaleIfErrorPolicy,
)
from repro.simulation.latency import LatencyModel


class TestDeadlineBudget:
    def test_charge_and_remaining(self):
        budget = DeadlineBudget(1.0)
        assert budget.remaining == pytest.approx(1.0)
        assert budget.allows(0.4)
        budget.charge(0.4)
        assert budget.remaining == pytest.approx(0.6)
        assert not budget.exhausted

    def test_exhaustion(self):
        budget = DeadlineBudget(0.5)
        budget.charge(0.5)
        assert budget.exhausted
        assert not budget.allows(0.01)
        assert budget.remaining == 0.0

    def test_allows_is_a_preflight_check_not_a_charge(self):
        budget = DeadlineBudget(1.0)
        assert budget.allows(0.9)
        assert budget.allows(0.9)  # repeated checks do not consume budget
        assert budget.remaining == pytest.approx(1.0)

    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ConfigurationError):
            DeadlineBudget(0.0)


class TestRetryPolicy:
    def test_backoff_is_capped_and_jittered(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=0.3)
        rng = random.Random(7)
        for attempt in range(6):
            ceiling = min(policy.max_delay, policy.base_delay * 2**attempt)
            for _ in range(50):
                delay = policy.backoff(attempt, rng)
                assert 0.0 <= delay <= ceiling

    def test_backoff_is_deterministic_per_seed(self):
        policy = RetryPolicy()
        first = [policy.backoff(i, random.Random(11)) for i in range(4)]
        second = [policy.backoff(i, random.Random(11)) for i in range(4)]
        assert first == second

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=0.5, max_delay=0.1)


class TestCircuitBreaker:
    def build(self, threshold=3, cooldown=1.0):
        clock = VirtualClock()
        breaker = CircuitBreaker(BreakerPolicy(threshold, cooldown), clock)
        return clock, breaker

    def test_opens_after_consecutive_failures(self):
        clock, breaker = self.build(threshold=3)
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        clock, breaker = self.build(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_probe_after_cooldown_then_close_on_success(self):
        clock, breaker = self.build(threshold=1, cooldown=2.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(2.5)
        assert breaker.allow()  # the probe
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens_with_fresh_cooldown(self):
        clock, breaker = self.build(threshold=1, cooldown=2.0)
        breaker.record_failure()
        clock.advance(2.5)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        clock.advance(1.0)  # not yet a full cooldown since the re-open
        assert not breaker.allow()
        clock.advance(1.5)
        assert breaker.allow()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            BreakerPolicy(cooldown=-1.0)


class TestCircuitBreakerEdgeCases:
    """Half-open races: queued requests around the single probe slot."""

    def build(self, threshold=1, cooldown=2.0):
        clock = VirtualClock()
        breaker = CircuitBreaker(BreakerPolicy(threshold, cooldown), clock)
        return clock, breaker

    def trip_and_cool(self, clock, breaker):
        breaker.record_failure()
        clock.advance(2.5)

    def test_queued_requests_are_denied_while_the_probe_is_inflight(self):
        clock, breaker = self.build()
        self.trip_and_cool(clock, breaker)
        assert breaker.allow()  # the probe goes out
        # A burst of queued requests arrives before the probe resolves:
        # every one must be refused, and none may steal the probe slot.
        for _ in range(5):
            assert not breaker.allow()
        assert breaker.state == BREAKER_HALF_OPEN

    def test_probe_failure_with_queued_requests_reopens_for_everyone(self):
        clock, breaker = self.build()
        self.trip_and_cool(clock, breaker)
        assert breaker.allow()
        assert not breaker.allow()  # queued behind the probe
        breaker.record_failure()  # the probe fails
        assert breaker.state == BREAKER_OPEN
        # The queued requests retry immediately: still fast-failed, and
        # their denials must not extend or reset the fresh cooldown.
        for _ in range(3):
            assert not breaker.allow()
        clock.advance(2.5)
        assert breaker.allow()  # exactly one new probe after the cooldown
        assert not breaker.allow()

    def test_shard_restore_mid_probe_closes_on_the_probe_success(self):
        # The fault injector restores the shard while the probe is still
        # in flight; the probe's success is what closes the breaker, and
        # every queued request passes from then on.
        clock, breaker = self.build()
        self.trip_and_cool(clock, breaker)
        assert breaker.allow()
        assert not breaker.allow()  # queued mid-probe
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        for _ in range(5):
            assert breaker.allow()

    def test_restore_after_a_lost_probe_needs_one_more_cooldown(self):
        # Restore lands after the probe was already dropped: the failure
        # outcome re-opens the breaker even though the shard is healthy,
        # and the next cooldown's probe is what finally closes it.
        clock, breaker = self.build()
        self.trip_and_cool(clock, breaker)
        assert breaker.allow()
        breaker.record_failure()  # probe was lost before the restore
        assert breaker.state == BREAKER_OPEN
        clock.advance(2.5)
        assert breaker.allow()
        breaker.record_success()  # healthy shard answers the new probe
        assert breaker.state == BREAKER_CLOSED

    def test_late_success_from_before_the_trip_closes_the_breaker(self):
        # An in-flight request issued before the trip can resolve while
        # the breaker is open; success is authoritative evidence the
        # shard answers, so it closes the breaker immediately.
        clock, breaker = self.build(threshold=2)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_probe_slot_resets_on_each_new_half_open_window(self):
        clock, breaker = self.build()
        self.trip_and_cool(clock, breaker)
        assert breaker.allow()
        breaker.record_failure()
        clock.advance(2.5)
        # New half-open window: the stale probe flag must not leak in.
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allow()


class TestHedgePolicy:
    def test_delay_is_the_analytic_quantile(self):
        model = LatencyModel(mean=0.1, jitter=0.02)
        policy = HedgePolicy(quantile=0.95)
        expected = NormalDist(0.1, 0.02).inv_cdf(0.95)
        assert policy.delay(model) == pytest.approx(max(model.minimum, expected))

    def test_zero_jitter_model_degenerates_to_the_mean(self):
        model = LatencyModel(mean=0.1, jitter=0.0)
        assert HedgePolicy().delay(model) == pytest.approx(0.1)

    def test_delay_draws_no_rng(self):
        model = LatencyModel(mean=0.1, jitter=0.02)
        model.reseed(3)
        before = model.sample()
        model.reseed(3)
        HedgePolicy().delay(model)
        assert model.sample() == before

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HedgePolicy(quantile=0.0)
        with pytest.raises(ConfigurationError):
            HedgePolicy(quantile=1.0)


class TestStaleIfErrorPolicy:
    def test_budget_bounds_serving(self):
        policy = StaleIfErrorPolicy(max_staleness=5.0)
        assert policy.may_serve(0.0)
        assert policy.may_serve(5.0)
        assert not policy.may_serve(5.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StaleIfErrorPolicy(max_staleness=0.0)


class TestResilienceConfig:
    def test_defaults_enable_every_policy(self):
        config = ResilienceConfig()
        assert config.enabled
        assert config.retry is not None
        assert config.breaker is not None
        assert config.hedge is not None
        assert config.stale_if_error is not None
        assert config.request_deadline == pytest.approx(2.0)

    def test_off_is_disabled(self):
        assert not ResilienceConfig.off().enabled

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(request_deadline=0.0)
        with pytest.raises(ConfigurationError):
            ResilienceConfig(assumed_round_trip=-0.1)
