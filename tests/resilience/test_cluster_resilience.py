"""Cluster-level resilience: retries, breakers, deadlines, gray failures."""

from __future__ import annotations

import pytest

from repro.clock import VirtualClock
from repro.cluster import ClusterClient, QuaestorCluster
from repro.db.query import Query
from repro.errors import ConfigurationError
from repro.replication import ReplicationConfig
from repro.resilience import BreakerPolicy, ResilienceConfig, RetryPolicy
from repro.rest.messages import StatusCode
from repro.simulation.latency import LatencyModel


def build_cluster(
    num_shards=2,
    replication_factor=2,
    resilience=None,
    gray_seed=0,
    clock=None,
):
    clock = clock if clock is not None else VirtualClock()
    replication = ReplicationConfig(
        replication_factor=replication_factor,
        lag=LatencyModel(mean=0.01, jitter=0.0),
    )
    cluster = QuaestorCluster(
        num_shards=num_shards,
        clock=clock,
        matching_nodes=2,
        replication=replication,
        resilience=resilience,
        gray_seed=gray_seed,
    )
    facade = ClusterClient(cluster)
    for index in range(40):
        facade.handle_insert(
            "posts", {"_id": f"p{index:02d}", "category": index % 4, "views": index}
        )
    clock.advance(1.0)
    return clock, cluster, facade


def shard_of(cluster, collection, document_id):
    return cluster.router.record_read(collection, document_id)


class TestGraySurface:
    def test_slow_factor_combines_shard_and_node_levels(self):
        _, cluster, _ = build_cluster(resilience=ResilienceConfig())
        cluster.slow_target("shard:0", 3.0)
        cluster.slow_target("s0:n1", 5.0)
        assert cluster.gray.slow_factor(0, "s0:n0") == pytest.approx(3.0)
        assert cluster.gray.slow_factor(0, "s0:n1") == pytest.approx(5.0)
        assert cluster.gray.slow_factor(1, "s1:n0") == pytest.approx(1.0)
        cluster.restore_target("shard:0")
        assert cluster.gray.slow_factor(0, "s0:n0") == pytest.approx(1.0)

    def test_gray_events_are_counted(self):
        _, cluster, _ = build_cluster(resilience=ResilienceConfig())
        cluster.slow_target("shard:0", 2.0)
        cluster.flaky_target("shard:1", 0.5)
        cluster.restore_target("shard:0")
        counters = cluster.counters.as_dict()
        assert counters["gray_slow_events"] == 1
        assert counters["gray_flaky_events"] == 1
        assert counters["gray_restores"] == 1

    def test_invalid_magnitudes_are_rejected(self):
        _, cluster, _ = build_cluster()
        with pytest.raises(ConfigurationError):
            cluster.slow_target("shard:0", 0.5)
        with pytest.raises(ConfigurationError):
            cluster.flaky_target("shard:0", 0.0)

    def test_flaky_drops_are_seeded_and_deterministic(self):
        _, first, _ = build_cluster(gray_seed=7)
        _, second, _ = build_cluster(gray_seed=7)
        for cluster in (first, second):
            cluster.flaky_target("shard:0", 0.5)
        drops_first = [first.gray.should_drop_request(0) for _ in range(64)]
        drops_second = [second.gray.should_drop_request(0) for _ in range(64)]
        assert drops_first == drops_second
        assert any(drops_first) and not all(drops_first)


class TestReadRetries:
    def test_flaky_shard_reads_recover_via_retries(self):
        resilience = ResilienceConfig(retry=RetryPolicy(max_attempts=6), breaker=None, hedge=None)
        _, cluster, facade = build_cluster(resilience=resilience)
        cluster.flaky_target("shard:0", 0.45)
        ok = errors = 0
        for index in range(40):
            response = facade.handle_read("posts", f"p{index:02d}")
            if response.status is StatusCode.SERVICE_UNAVAILABLE:
                errors += 1
            else:
                ok += 1
        counters = cluster.counters.as_dict()
        assert counters["read_retries"] > 0
        assert counters["read_retry_successes"] > 0
        # With a 45% drop rate and 6 attempts, nearly everything succeeds.
        assert errors <= 2 and ok >= 38

    def test_without_resilience_flaky_reads_simply_fail(self):
        _, cluster, facade = build_cluster(resilience=None)
        cluster.flaky_target("shard:0", 0.45)
        statuses = [
            facade.handle_read("posts", f"p{index:02d}").status for index in range(40)
        ]
        assert StatusCode.SERVICE_UNAVAILABLE in statuses
        assert "read_retries" not in cluster.counters.as_dict()

    def test_retry_trace_accumulates_backoff_and_round_trips(self):
        resilience = ResilienceConfig(retry=RetryPolicy(max_attempts=4), breaker=None)
        _, cluster, facade = build_cluster(resilience=resilience)
        cluster.flaky_target("shard:0", 0.9)
        facade.handle_read("posts", "p00")
        trace = cluster.take_resilience_trace()
        assert trace.extra_round_trips > 0
        assert trace.backoff_s > 0.0
        # Draining resets: the next trace is empty again.
        assert cluster.take_resilience_trace().empty


class TestCircuitBreaker:
    def test_breaker_opens_on_a_dead_unreplicated_shard(self):
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=2),
            breaker=BreakerPolicy(failure_threshold=4, cooldown=30.0),
            hedge=None,
        )
        clock, cluster, facade = build_cluster(
            replication_factor=1, resilience=resilience
        )
        shard = shard_of(cluster, "posts", "p00")
        cluster.crash_node(cluster.groups[shard].primary_node_id)
        for _ in range(20):
            facade.handle_read("posts", "p00")
        counters = cluster.counters.as_dict()
        assert counters["breaker_fast_fails"] > 0
        stats = cluster.statistics()
        assert stats["resilience_breakers_open"] >= 1.0

    def test_breaker_recovers_after_cooldown_and_shard_recovery(self):
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=2),
            breaker=BreakerPolicy(failure_threshold=4, cooldown=5.0),
            hedge=None,
        )
        clock, cluster, facade = build_cluster(
            replication_factor=1, resilience=resilience
        )
        shard = shard_of(cluster, "posts", "p00")
        crashed = cluster.groups[shard].primary_node_id
        cluster.crash_node(crashed)
        for _ in range(10):
            facade.handle_read("posts", "p00")
        cluster.recover_node(crashed)
        clock.advance(6.0)
        response = facade.handle_read("posts", "p00")
        assert response.status is StatusCode.OK
        stats = cluster.statistics()
        assert stats["resilience_breakers_open"] == 0.0

    def test_per_replica_breaker_steers_reads_off_a_flaky_node(self):
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=4),
            breaker=BreakerPolicy(failure_threshold=2, cooldown=60.0),
            hedge=None,
        )
        _, cluster, facade = build_cluster(resilience=resilience, gray_seed=3)
        shard = shard_of(cluster, "posts", "p00")
        # Make one replica of the shard drop every response it serves.
        group = cluster.groups[shard]
        flaky_node = group.serving_node_ids()[-1]
        cluster.flaky_target(flaky_node, 1.0)
        for index in range(40):
            facade.handle_read("posts", f"p{index:02d}")
        merged = {}
        for shard_group in cluster.groups:
            for name, value in shard_group.counters.as_dict().items():
                merged[name] = merged.get(name, 0) + value
        assert merged.get("breaker_skipped_replicas", 0) > 0


class TestDeadlines:
    def test_tight_deadline_stops_retrying(self):
        resilience = ResilienceConfig(
            retry=RetryPolicy(max_attempts=8, base_delay=0.4, max_delay=0.8),
            breaker=None,
            request_deadline=0.5,
            assumed_round_trip=0.2,
        )
        _, cluster, facade = build_cluster(resilience=resilience)
        cluster.flaky_target("shard:0", 1.0)
        for index in range(10):
            facade.handle_read("posts", f"p{index:02d}")
        counters = cluster.counters.as_dict()
        assert counters["deadline_exhausted"] > 0
        # The deadline caps attempts well below the configured 8.
        assert counters["read_retries"] < 10 * 7

    def test_scatter_query_propagates_the_deadline(self):
        resilience = ResilienceConfig(retry=RetryPolicy(max_attempts=3), breaker=None)
        _, cluster, facade = build_cluster(resilience=resilience)
        cluster.flaky_target("shard:0", 0.6)
        for _ in range(20):
            facade.handle_query(Query("posts", {"category": 1}))
        counters = cluster.counters.as_dict()
        assert counters.get("query_retries", 0) > 0


class TestWriteIdempotency:
    def test_pre_admission_drops_are_retried(self):
        resilience = ResilienceConfig(retry=RetryPolicy(max_attempts=6), breaker=None)
        _, cluster, facade = build_cluster(resilience=resilience)
        cluster.flaky_target("shard:0", 0.45)
        ok = 0
        for index in range(30):
            response = facade.handle_update("posts", f"p{index:02d}", {"views": 99})
            if response.status is not StatusCode.SERVICE_UNAVAILABLE:
                ok += 1
        counters = cluster.counters.as_dict()
        assert counters["write_retries"] > 0
        assert counters["write_retry_successes"] > 0
        assert ok >= 28

    def test_post_apply_ack_loss_is_never_retried(self):
        resilience = ResilienceConfig(retry=RetryPolicy(max_attempts=6), breaker=None)
        _, cluster, facade = build_cluster(resilience=resilience, gray_seed=5)
        shard = shard_of(cluster, "posts", "p00")
        primary = cluster.groups[shard].primary_node_id
        cluster.flaky_target(primary, 1.0)  # node-level: drops the *ack*
        response = facade.handle_update("posts", "p00", {"views": 123})
        assert response.status is StatusCode.SERVICE_UNAVAILABLE
        counters = cluster.counters.as_dict()
        assert counters["write_ack_drops"] == 1
        # The mutation was applied exactly once despite the lost ack.
        cluster.restore_target(primary)
        read = facade.handle_read("posts", "p00")
        assert read.body["document"]["views"] == 123
        # No retry happened after the ack loss (one write attempt total).
        assert "write_retries" not in counters


class TestNoFaultTransparency:
    def test_attached_resilience_changes_nothing_without_faults(self):
        _, plain_cluster, plain = build_cluster(resilience=None)
        _, resilient_cluster, resilient = build_cluster(resilience=ResilienceConfig())
        for index in range(40):
            key = f"p{index:02d}"
            assert (
                plain.handle_read("posts", key).body
                == resilient.handle_read("posts", key).body
            )
        plain_query = plain.handle_query(Query("posts", {"category": 2}))
        resilient_query = resilient.handle_query(Query("posts", {"category": 2}))
        assert plain_query.body["ids"] == resilient_query.body["ids"]
        # Not a single retry, fast-fail, drop or backoff happened.
        counters = resilient_cluster.counters.as_dict()
        for name in (
            "read_retries",
            "write_retries",
            "query_retries",
            "breaker_fast_fails",
            "gray_request_drops",
            "gray_response_drops",
            "deadline_exhausted",
        ):
            assert name not in counters
        assert resilient_cluster.take_resilience_trace().empty

    def test_disabled_config_builds_no_runtime(self):
        _, cluster, _ = build_cluster(resilience=ResilienceConfig.off())
        assert cluster.resilience_runtime is None
