"""Tests for stateful query matching (ORDER BY / LIMIT / OFFSET)."""

from __future__ import annotations

import pytest

from repro.db.changestream import ChangeEvent, OperationType
from repro.db.query import Query
from repro.invalidb import NotificationType, QueryMatchState
from repro.invalidb.stateful import OrderedResultState, window_diff


def make_event(sequence: int, document_id: str, after: dict | None, before: dict | None = None):
    return ChangeEvent(
        sequence=sequence,
        operation=OperationType.UPDATE if after is not None else OperationType.DELETE,
        collection="posts",
        document_id=document_id,
        before=before,
        after=after,
        timestamp=float(sequence),
    )


def doc(document_id: str, views: int) -> dict:
    return {"_id": document_id, "views": views, "tags": ["example"]}


class TestOrderedResultState:
    def test_window_respects_sort_limit_offset(self):
        query = Query("posts", {}, sort=[("views", -1)], limit=2, offset=1)
        state = OrderedResultState(query)
        state.initialize([doc("a", 10), doc("b", 30), doc("c", 20), doc("d", 5)])
        # Full order: b(30), c(20), a(10), d(5); offset 1, limit 2 -> [c, a]
        assert state.window_ids() == ["c", "a"]
        assert state.full_order() == ["b", "c", "a", "d"]

    def test_apply_match_reorders(self):
        query = Query("posts", {}, sort=[("views", -1)], limit=2)
        state = OrderedResultState(query)
        state.initialize([doc("a", 10), doc("b", 30)])
        state.apply_match("c", doc("c", 50))
        assert state.window_ids() == ["c", "b"]

    def test_apply_unmatch_removes(self):
        query = Query("posts", {}, sort=[("views", -1)])
        state = OrderedResultState(query)
        state.initialize([doc("a", 10), doc("b", 30)])
        state.apply_unmatch("b")
        assert state.window_ids() == ["a"]
        assert not state.contains("b")

    def test_position_of(self):
        query = Query("posts", {}, sort=[("views", 1)])
        state = OrderedResultState(query)
        state.initialize([doc("a", 10), doc("b", 30)])
        assert state.position_of("a") == 0
        assert state.position_of("b") == 1
        assert state.position_of("missing") is None


class TestWindowDiff:
    def test_entered_left_moved(self):
        entered, left, moved = window_diff(["a", "b", "c"], ["b", "a", "d"])
        assert entered == ["d"]
        assert left == ["c"]
        assert ("a", 1) in moved and ("b", 0) in moved

    def test_identical_windows(self):
        assert window_diff(["a"], ["a"]) == ([], [], [])


class TestStatefulQueryMatchState:
    @pytest.fixture
    def top2_state(self) -> QueryMatchState:
        """Top-2 posts by views (a stateful query)."""
        query = Query("posts", {"tags": "example"}, sort=[("views", -1)], limit=2)
        state = QueryMatchState(query)
        state.initialize([doc("a", 10), doc("b", 30), doc("c", 20)])
        return state

    def test_initial_window(self, top2_state):
        assert top2_state.result_window() == ["b", "c"]

    def test_new_top_document_displaces_last(self, top2_state):
        notifications = top2_state.process(make_event(1, "d", doc("d", 100)))
        types = sorted(n.type for n in notifications)
        # 'd' enters the window, 'c' leaves it, 'b' shifts position.
        assert NotificationType.ADD in types
        assert NotificationType.REMOVE in types
        assert NotificationType.CHANGE_INDEX in types
        assert top2_state.result_window() == ["d", "b"]

    def test_update_outside_window_is_silent(self, top2_state):
        # 'a' has 10 views; bumping it to 15 keeps it outside the top 2.
        notifications = top2_state.process(make_event(1, "a", doc("a", 15), before=doc("a", 10)))
        assert notifications == []
        assert top2_state.result_window() == ["b", "c"]

    def test_update_inside_window_without_reorder_is_change(self, top2_state):
        updated = dict(doc("b", 30), title="edited")
        notifications = top2_state.process(make_event(1, "b", updated, before=doc("b", 30)))
        assert [n.type for n in notifications] == [NotificationType.CHANGE]

    def test_unmatching_window_member_promotes_next(self, top2_state):
        # 'b' loses the 'example' tag and leaves; 'a' moves into the window.
        no_tag = {"_id": "b", "views": 30, "tags": []}
        notifications = top2_state.process(make_event(1, "b", no_tag, before=doc("b", 30)))
        types = [n.type for n in notifications]
        assert NotificationType.REMOVE in types
        assert NotificationType.ADD in types  # 'a' enters
        assert top2_state.result_window() == ["c", "a"]

    def test_change_index_carries_new_position(self, top2_state):
        notifications = top2_state.process(make_event(1, "c", doc("c", 99), before=doc("c", 20)))
        index_changes = [n for n in notifications if n.type is NotificationType.CHANGE_INDEX]
        assert index_changes and index_changes[0].new_index is not None
