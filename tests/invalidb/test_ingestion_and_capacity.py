"""Tests for the ingestion queues and the capacity manager."""

from __future__ import annotations

import pytest

from repro.db.changestream import ChangeEvent, OperationType
from repro.db.query import Query
from repro.invalidb import CapacityManager, InvaliDBCluster, NotificationType
from repro.invalidb.ingestion import (
    ChangestreamIngestionTask,
    InvaliDBFrontend,
    QueryActivation,
    QueryIngestionTask,
)
from repro.kvstore import MessageQueue


def make_event(sequence: int, document_id: str, category: int) -> ChangeEvent:
    return ChangeEvent(
        sequence=sequence,
        operation=OperationType.UPDATE,
        collection="posts",
        document_id=document_id,
        before=None,
        after={"_id": document_id, "category": category},
        timestamp=float(sequence),
    )


class TestIngestionTasks:
    def test_query_ingestion_activates_and_deactivates(self):
        cluster = InvaliDBCluster()
        frontend = InvaliDBFrontend(cluster)
        query = Query("posts", {"category": 1})
        frontend.submit_activation(query, [])
        frontend.pump()
        assert cluster.is_registered(query.cache_key)
        frontend.submit_deactivation(query.cache_key)
        frontend.pump()
        assert not cluster.is_registered(query.cache_key)

    def test_change_ingestion_produces_notifications(self):
        cluster = InvaliDBCluster()
        frontend = InvaliDBFrontend(cluster)
        query = Query("posts", {"category": 1})
        frontend.submit_activation(query, [])
        frontend.submit_change(make_event(1, "d1", 1))
        notifications = frontend.pump()
        assert [n.type for n in notifications] == [NotificationType.ADD]

    def test_activations_processed_before_changes(self):
        """A change submitted right after the activation must not be missed."""
        cluster = InvaliDBCluster()
        frontend = InvaliDBFrontend(cluster)
        query = Query("posts", {"category": 2})
        frontend.submit_activation(query, [])
        frontend.submit_change(make_event(1, "d9", 2))
        notifications = frontend.pump()
        assert len(notifications) == 1

    def test_backlog_counts_pending_items(self):
        cluster = InvaliDBCluster()
        frontend = InvaliDBFrontend(cluster)
        frontend.submit_activation(Query("posts", {"category": 1}), [])
        frontend.submit_change(make_event(1, "d1", 1))
        assert frontend.backlog == 2
        frontend.pump()
        assert frontend.backlog == 0

    def test_bounded_queue_rejects_overflow(self):
        cluster = InvaliDBCluster()
        frontend = InvaliDBFrontend(cluster, queue_capacity=1)
        assert frontend.submit_change(make_event(1, "d1", 1)) is True
        assert frontend.submit_change(make_event(2, "d2", 1)) is False

    def test_unexpected_queue_items_rejected(self):
        cluster = InvaliDBCluster()
        queue = MessageQueue("bogus")
        queue.offer("not-an-event")
        with pytest.raises(TypeError):
            ChangestreamIngestionTask(queue, cluster).run_once()
        queue = MessageQueue("bogus2")
        queue.offer(42)
        with pytest.raises(TypeError):
            QueryIngestionTask(queue, cluster).run_once()

    def test_query_activation_dataclass_holds_initial_result(self):
        activation = QueryActivation(Query("posts", {}), [{"_id": "a"}])
        assert activation.initial_result[0]["_id"] == "a"


class TestCapacityManager:
    def test_admits_within_capacity(self):
        manager = CapacityManager(InvaliDBCluster(), expected_update_rate=100.0)
        assert manager.admit("query:a", result_size=10) is True
        assert manager.is_admitted("query:a")

    def test_limit_by_max_active_queries(self):
        manager = CapacityManager(InvaliDBCluster(), max_active_queries=2)
        assert manager.admit("q1") and manager.admit("q2")
        assert manager.admit("q3") is False
        assert manager.rejections == 1

    def test_already_admitted_queries_stay_admitted(self):
        manager = CapacityManager(InvaliDBCluster(), max_active_queries=1)
        assert manager.admit("q1")
        assert manager.admit("q1")
        assert manager.admitted_queries() == ["q1"]

    def test_popular_query_displaces_low_scoring_one(self):
        manager = CapacityManager(InvaliDBCluster(), max_active_queries=1)
        manager.admit("cold-query")
        manager.record_invalidation("cold-query")
        manager.record_invalidation("cold-query")
        # The hot candidate has many reads and no invalidations.
        for _ in range(20):
            manager.record_read("hot-query", result_size=5)
        assert manager.admit("hot-query") is True
        assert manager.is_admitted("hot-query")
        assert not manager.is_admitted("cold-query")

    def test_release(self):
        manager = CapacityManager(InvaliDBCluster(), max_active_queries=5)
        manager.admit("q1")
        assert manager.release("q1") is True
        assert manager.release("q1") is False

    def test_capacity_limit_scales_with_cluster_size(self):
        small = CapacityManager(InvaliDBCluster(matching_nodes=1), expected_update_rate=1000.0)
        large = CapacityManager(InvaliDBCluster(matching_nodes=4), expected_update_rate=1000.0)
        assert large.capacity_limit() > small.capacity_limit()

    def test_zero_update_rate_means_unbounded(self):
        manager = CapacityManager(InvaliDBCluster(), expected_update_rate=0.0)
        assert manager.capacity_limit() == float("inf")

    def test_score_prefers_read_heavy_low_churn_queries(self):
        manager = CapacityManager(InvaliDBCluster())
        for _ in range(10):
            manager.record_read("popular", result_size=10)
        manager.record_read("churny", result_size=10)
        for _ in range(5):
            manager.record_invalidation("churny")
        assert manager.cost("popular").score > manager.cost("churny").score

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            CapacityManager(InvaliDBCluster(), headroom=0.0)
        with pytest.raises(ValueError):
            CapacityManager(InvaliDBCluster(), expected_update_rate=-1.0)


class TestTwoPhaseAdmission:
    def test_probe_does_not_take_the_slot(self):
        manager = CapacityManager(InvaliDBCluster(), max_active_queries=2)
        ticket = manager.probe("q1", result_size=3)
        assert ticket.admitted is True
        assert not manager.is_admitted("q1")

    def test_commit_takes_the_slot(self):
        manager = CapacityManager(InvaliDBCluster(), max_active_queries=2)
        ticket = manager.probe("q1")
        assert manager.commit(ticket) is True
        assert manager.is_admitted("q1")

    def test_abort_leaves_the_admitted_set_untouched(self):
        manager = CapacityManager(InvaliDBCluster(), max_active_queries=1)
        ticket = manager.probe("q1")
        manager.abort(ticket)
        assert not manager.is_admitted("q1")
        assert manager.aborts == 1
        # The slot is still free for the next candidate.
        assert manager.admit("q2") is True

    def test_aborted_probe_does_not_displace_the_victim(self):
        manager = CapacityManager(InvaliDBCluster(), max_active_queries=1)
        manager.admit("cold-query")
        manager.record_invalidation("cold-query")
        manager.record_invalidation("cold-query")
        for _ in range(20):
            manager.record_read("hot-query", result_size=5)
        ticket = manager.probe("hot-query")
        assert ticket.admitted and ticket.victim_key == "cold-query"
        # Between probe and commit the victim keeps its slot...
        assert manager.is_admitted("cold-query")
        manager.abort(ticket)
        # ...and an abort never evicts it.
        assert manager.is_admitted("cold-query")
        assert not manager.is_admitted("hot-query")

    def test_commit_displaces_the_victim(self):
        manager = CapacityManager(InvaliDBCluster(), max_active_queries=1)
        manager.admit("cold-query")
        manager.record_invalidation("cold-query")
        manager.record_invalidation("cold-query")
        for _ in range(20):
            manager.record_read("hot-query", result_size=5)
        ticket = manager.probe("hot-query")
        manager.commit(ticket)
        assert manager.is_admitted("hot-query")
        assert not manager.is_admitted("cold-query")

    def test_rejected_ticket_cannot_be_committed(self):
        manager = CapacityManager(InvaliDBCluster(), max_active_queries=1)
        manager.admit("q1")
        for _ in range(20):
            manager.record_read("q1", result_size=0)
        ticket = manager.probe("q2")
        assert ticket.admitted is False
        assert manager.rejections == 1
        with pytest.raises(ValueError):
            manager.commit(ticket)

    def test_abort_of_rejected_or_idempotent_tickets_is_not_counted(self):
        manager = CapacityManager(InvaliDBCluster(), max_active_queries=1)
        manager.admit("q1")
        for _ in range(20):
            manager.record_read("q1", result_size=0)
        rejected = manager.probe("q2")
        manager.abort(rejected)
        already = manager.probe("q1")
        assert already.already_admitted
        manager.abort(already)
        assert manager.aborts == 0

    def test_admit_is_probe_plus_commit(self):
        manager = CapacityManager(InvaliDBCluster(), max_active_queries=2)
        assert manager.admit("q1") is True
        assert manager.probes == 1 and manager.commits == 1
        assert manager.is_admitted("q1")

    def test_probe_counters_accumulate(self):
        manager = CapacityManager(InvaliDBCluster(), max_active_queries=2)
        manager.commit(manager.probe("q1"))
        manager.abort(manager.probe("q2"))
        assert (manager.probes, manager.commits, manager.aborts) == (2, 1, 1)

    def test_stale_ticket_commit_rearbitrates_instead_of_overfilling(self):
        manager = CapacityManager(InvaliDBCluster(), max_active_queries=1)
        ticket = manager.probe("q1")
        assert ticket.admitted and ticket.victim_key is None
        # The slot the probe saw is taken before the ticket is redeemed.
        assert manager.admit("q2") is True
        manager.record_read("q2", result_size=0)
        assert manager.commit(ticket) is False
        assert manager.admitted_queries() == ["q2"]

    def test_stale_ticket_commit_can_still_win_rearbitration(self):
        manager = CapacityManager(InvaliDBCluster(), max_active_queries=1)
        for _ in range(20):
            manager.record_read("hot", result_size=0)
        ticket = manager.probe("hot")
        assert manager.admit("weak") is True
        # The hot candidate still displaces the interleaved occupant.
        assert manager.commit(ticket) is True
        assert manager.admitted_queries() == ["hot"]

    def test_stale_victim_commit_respects_the_limit(self):
        manager = CapacityManager(InvaliDBCluster(), max_active_queries=1)
        manager.admit("cold")
        for _ in range(20):
            manager.record_read("hot", result_size=0)
        ticket = manager.probe("hot")
        assert ticket.victim_key == "cold"
        # The victim disappears and a stronger occupant takes the slot.
        manager.release("cold")
        manager.admit("stronger")
        for _ in range(50):
            manager.record_read("stronger", result_size=0)
        assert manager.commit(ticket) is False
        assert manager.admitted_queries() == ["stronger"]
