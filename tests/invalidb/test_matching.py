"""Tests for per-query match-state tracking (add/change/remove notifications)."""

from __future__ import annotations

import pytest

from repro.db.changestream import ChangeEvent, OperationType
from repro.db.query import Query
from repro.invalidb import NotificationType, QueryMatchState


def make_event(
    sequence: int,
    document_id: str,
    after: dict | None,
    before: dict | None = None,
    operation: OperationType = OperationType.UPDATE,
    collection: str = "posts",
) -> ChangeEvent:
    return ChangeEvent(
        sequence=sequence,
        operation=operation,
        collection=collection,
        document_id=document_id,
        before=before,
        after=after,
        timestamp=float(sequence),
    )


@pytest.fixture
def tag_query_state() -> QueryMatchState:
    """The paper's Figure 5 query: posts tagged 'example'."""
    state = QueryMatchState(Query("posts", {"tags": "example"}))
    state.initialize([])
    return state


class TestFigure5Lifecycle:
    """Reproduces the notification sequence of Figure 5 in the paper."""

    def test_add_change_remove_sequence(self, tag_query_state):
        # 1. New untagged post: no notification.
        untagged = {"_id": "p1", "tags": []}
        assert tag_query_state.process(
            make_event(1, "p1", untagged, operation=OperationType.INSERT)
        ) == []

        # 2. The 'example' tag is added: the post enters the result set.
        tagged = {"_id": "p1", "tags": ["example"]}
        notifications = tag_query_state.process(make_event(2, "p1", tagged, before=untagged))
        assert [n.type for n in notifications] == [NotificationType.ADD]

        # 3. Another tag is added: the match status is unchanged -> change event.
        both = {"_id": "p1", "tags": ["example", "music"]}
        notifications = tag_query_state.process(make_event(3, "p1", both, before=tagged))
        assert [n.type for n in notifications] == [NotificationType.CHANGE]

        # 4. The 'example' tag is removed: the post leaves the result set.
        music_only = {"_id": "p1", "tags": ["music"]}
        notifications = tag_query_state.process(make_event(4, "p1", music_only, before=both))
        assert [n.type for n in notifications] == [NotificationType.REMOVE]


class TestStatelessMatching:
    def test_initial_result_seeds_matching_state(self):
        state = QueryMatchState(Query("posts", {"tags": "example"}))
        state.initialize([{"_id": "p1", "tags": ["example"]}])
        # An update keeping the match produces a change, not an add.
        notifications = state.process(
            make_event(1, "p1", {"_id": "p1", "tags": ["example"], "views": 2},
                       before={"_id": "p1", "tags": ["example"]})
        )
        assert [n.type for n in notifications] == [NotificationType.CHANGE]

    def test_delete_of_matching_document_is_remove(self, tag_query_state):
        tag_query_state.process(make_event(1, "p1", {"_id": "p1", "tags": ["example"]}))
        notifications = tag_query_state.process(
            make_event(2, "p1", None, operation=OperationType.DELETE)
        )
        assert [n.type for n in notifications] == [NotificationType.REMOVE]

    def test_delete_of_non_matching_document_is_silent(self, tag_query_state):
        assert tag_query_state.process(
            make_event(1, "p9", None, operation=OperationType.DELETE)
        ) == []

    def test_update_without_content_change_is_silent(self, tag_query_state):
        document = {"_id": "p1", "tags": ["example"]}
        tag_query_state.process(make_event(1, "p1", document))
        assert tag_query_state.process(make_event(2, "p1", dict(document), before=dict(document))) == []

    def test_other_collection_is_ignored(self, tag_query_state):
        assert tag_query_state.process(
            make_event(1, "u1", {"_id": "u1", "tags": ["example"]}, collection="users")
        ) == []

    def test_member_filter_restricts_responsibility(self):
        state = QueryMatchState(
            Query("posts", {"tags": "example"}),
            member_filter=lambda document_id: document_id.endswith("0"),
        )
        state.initialize([])
        handled = state.process(make_event(1, "p0", {"_id": "p0", "tags": ["example"]}))
        ignored = state.process(make_event(2, "p1", {"_id": "p1", "tags": ["example"]}))
        assert [n.type for n in handled] == [NotificationType.ADD]
        assert ignored == []

    def test_notifications_carry_query_and_document(self, tag_query_state):
        notifications = tag_query_state.process(
            make_event(7, "p3", {"_id": "p3", "tags": ["example"]})
        )
        notification = notifications[0]
        assert notification.document_id == "p3"
        assert notification.query_key == tag_query_state.query_key
        assert notification.timestamp == 7.0

    def test_matching_ids_tracks_membership(self, tag_query_state):
        tag_query_state.process(make_event(1, "p1", {"_id": "p1", "tags": ["example"]}))
        tag_query_state.process(make_event(2, "p2", {"_id": "p2", "tags": ["example"]}))
        tag_query_state.process(make_event(3, "p1", {"_id": "p1", "tags": []}))
        assert tag_query_state.matching_ids == {"p2"}

    def test_matching_ids_is_a_read_only_live_view(self, tag_query_state):
        """No per-access copy: the view is read-only and tracks the state."""
        view = tag_query_state.matching_ids
        assert not hasattr(view, "add")
        assert not hasattr(view, "discard")
        tag_query_state.process(make_event(1, "p1", {"_id": "p1", "tags": ["example"]}))
        assert "p1" in view  # same view reflects the later event
        assert set(view) == {"p1"}

    def test_matching_ids_set_operators_return_plain_sets(self, tag_query_state):
        tag_query_state.process(make_event(1, "p1", {"_id": "p1", "tags": ["example"]}))
        tag_query_state.process(make_event(2, "p2", {"_id": "p2", "tags": ["example"]}))
        view = tag_query_state.matching_ids
        intersection = view & {"p1", "p3"}
        assert isinstance(intersection, set)
        assert intersection == {"p1"}
        assert len(intersection) == 1  # reusable, not a one-shot generator
        assert view | {"p3"} == {"p1", "p2", "p3"}
        assert view - {"p1"} == {"p2"}


class TestNotificationSemantics:
    def test_change_does_not_invalidate_id_lists(self, tag_query_state):
        tag_query_state.process(make_event(1, "p1", {"_id": "p1", "tags": ["example"]}))
        notifications = tag_query_state.process(
            make_event(2, "p1", {"_id": "p1", "tags": ["example"], "views": 5},
                       before={"_id": "p1", "tags": ["example"]})
        )
        change = notifications[0]
        assert change.type is NotificationType.CHANGE
        assert not change.invalidates_id_list()
        assert change.invalidates_object_list()

    def test_membership_changes_invalidate_both_representations(self, tag_query_state):
        notifications = tag_query_state.process(
            make_event(1, "p1", {"_id": "p1", "tags": ["example"]})
        )
        add = notifications[0]
        assert add.invalidates_id_list()
        assert add.invalidates_object_list()
