"""Tests for the InvaliDB cluster: distributed matching, capacity model."""

from __future__ import annotations

import pytest

from repro.db.changestream import ChangeEvent, OperationType
from repro.db.query import Query
from repro.invalidb import (
    InvaliDBCluster,
    NodeCapacityModel,
    NotificationType,
    PartitioningScheme,
)


def make_event(sequence: int, document_id: str, after: dict | None, before: dict | None = None):
    return ChangeEvent(
        sequence=sequence,
        operation=OperationType.UPDATE if after is not None else OperationType.DELETE,
        collection="posts",
        document_id=document_id,
        before=before,
        after=after,
        timestamp=float(sequence),
    )


class TestDistributedMatching:
    def test_cluster_produces_same_notifications_as_single_node(self):
        """Partitioning must not change the notification semantics."""
        queries = [Query("posts", {"category": value}) for value in range(5)]
        events = [
            make_event(index, f"d{index % 7}", {"_id": f"d{index % 7}", "category": index % 5})
            for index in range(1, 40)
        ]

        def run(cluster: InvaliDBCluster):
            for query in queries:
                cluster.register_query(query, [])
            collected = []
            for event in events:
                collected.extend(
                    (n.query_key, n.type, n.document_id) for n in cluster.process_event(event)
                )
            return sorted(collected)

        single = run(InvaliDBCluster(matching_nodes=1))
        distributed = run(InvaliDBCluster(matching_nodes=9))
        assert single == distributed
        assert single  # the scenario actually produces notifications

    def test_notifications_fan_out_to_subscribers(self):
        cluster = InvaliDBCluster(matching_nodes=2)
        cluster.register_query(Query("posts", {"category": 1}), [])
        received = []
        cluster.subscribe(received.append)
        cluster.process_event(make_event(1, "d1", {"_id": "d1", "category": 1}))
        assert len(received) == 1
        assert received[0].type is NotificationType.ADD

    def test_unsubscribe(self):
        cluster = InvaliDBCluster()
        cluster.register_query(Query("posts", {"category": 1}), [])
        received = []
        unsubscribe = cluster.subscribe(received.append)
        unsubscribe()
        cluster.process_event(make_event(1, "d1", {"_id": "d1", "category": 1}))
        assert received == []

    def test_deregister_stops_matching(self):
        cluster = InvaliDBCluster(matching_nodes=4)
        query = Query("posts", {"category": 1})
        cluster.register_query(query, [])
        assert cluster.is_registered(query.cache_key)
        assert cluster.deregister_query(query.cache_key) is True
        assert cluster.process_event(make_event(1, "d1", {"_id": "d1", "category": 1})) == []
        assert cluster.active_queries == 0

    def test_reregistration_resets_state(self):
        cluster = InvaliDBCluster()
        query = Query("posts", {"category": 1})
        cluster.register_query(query, [{"_id": "d1", "category": 1}])
        # Re-register with an empty initial result: the next matching update
        # is an add again, not a change.
        cluster.register_query(query, [])
        notifications = cluster.process_event(make_event(1, "d1", {"_id": "d1", "category": 1}))
        assert [n.type for n in notifications] == [NotificationType.ADD]

    def test_stateful_queries_handled_by_order_layer(self):
        cluster = InvaliDBCluster(matching_nodes=4)
        query = Query("posts", {"category": 1}, sort=[("views", -1)], limit=1)
        cluster.register_query(
            query, [{"_id": "a", "category": 1, "views": 5}, {"_id": "b", "category": 1, "views": 3}]
        )
        notifications = cluster.process_event(
            make_event(1, "b", {"_id": "b", "category": 1, "views": 50})
        )
        types = {n.type for n in notifications}
        assert NotificationType.ADD in types  # 'b' enters the top-1 window
        assert NotificationType.REMOVE in types  # 'a' leaves it

    def test_initial_result_outside_object_partition_is_filtered(self):
        """Each node only keeps the members of its own object partition."""
        cluster = InvaliDBCluster(scheme=PartitioningScheme(1, 4))
        query = Query("posts", {"category": 1})
        initial = [{"_id": f"d{index}", "category": 1} for index in range(20)]
        cluster.register_query(query, initial)
        per_node_members = [
            len(node.state(query.cache_key).matching_ids) for node in cluster.nodes
        ]
        assert sum(per_node_members) == 20
        assert max(per_node_members) < 20


class TestCapacityModel:
    def test_latency_grows_with_load(self):
        model = NodeCapacityModel()
        assert model.p99_latency(1_000_000) < model.p99_latency(4_000_000)

    def test_saturation_produces_latency_spike(self):
        model = NodeCapacityModel()
        assert model.p99_latency(model.max_ops_per_second) >= 10.0

    def test_paper_calibration_points(self):
        """99th percentile below ~20 ms up to ~3M ops/s, below ~30 ms up to ~4M."""
        model = NodeCapacityModel()
        assert model.p99_latency(3_000_000) < 0.020
        assert model.p99_latency(4_000_000) < 0.030

    def test_sustainable_ops_monotone_in_bound(self):
        model = NodeCapacityModel()
        assert model.sustainable_ops(0.015) < model.sustainable_ops(0.025)
        assert model.sustainable_ops(0.005) == 0.0

    def test_cluster_throughput_scales_linearly(self):
        small = InvaliDBCluster(matching_nodes=2)
        large = InvaliDBCluster(matching_nodes=8)
        bound = 0.020
        assert large.sustainable_throughput(bound) == pytest.approx(
            4 * small.sustainable_throughput(bound)
        )

    def test_offered_load_accounting(self):
        cluster = InvaliDBCluster(scheme=PartitioningScheme(2, 2))
        for value in range(8):
            cluster.register_query(Query("posts", {"category": value}), [])
        loads = cluster.offered_load_per_node(update_rate=1_000.0)
        assert len(loads) == 4
        # Every update is matched against every query exactly once overall.
        assert sum(loads) == pytest.approx(1_000.0 * 8)

    def test_estimated_latency_uses_busiest_node(self):
        cluster = InvaliDBCluster(matching_nodes=2)
        for value in range(10):
            cluster.register_query(Query("posts", {"category": value}), [])
        low = cluster.estimated_p99_latency(update_rate=100.0)
        high = cluster.estimated_p99_latency(update_rate=500_000.0)
        assert high > low

    def test_match_operation_counters(self):
        cluster = InvaliDBCluster(matching_nodes=1)
        for value in range(3):
            cluster.register_query(Query("posts", {"category": value}), [])
        cluster.process_event(make_event(1, "d1", {"_id": "d1", "category": 0}))
        assert cluster.nodes[0].match_operations == 3
