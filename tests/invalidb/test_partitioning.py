"""Tests for the query x object partitioning scheme."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.invalidb import PartitioningScheme


class TestGeometry:
    def test_for_nodes_prefers_square_grids(self):
        assert PartitioningScheme.for_nodes(4).total_nodes == 4
        scheme = PartitioningScheme.for_nodes(4)
        assert {scheme.query_partitions, scheme.object_partitions} == {2}

    def test_for_nodes_of_prime_counts(self):
        scheme = PartitioningScheme.for_nodes(7)
        assert scheme.total_nodes == 7
        assert 1 in (scheme.query_partitions, scheme.object_partitions)

    def test_for_nodes_sixteen(self):
        scheme = PartitioningScheme.for_nodes(16)
        assert scheme.total_nodes == 16
        assert scheme.query_partitions == scheme.object_partitions == 4

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitioningScheme(0, 1)
        with pytest.raises(ConfigurationError):
            PartitioningScheme.for_nodes(0)


class TestPlacement:
    def test_query_partition_deterministic_and_in_range(self):
        scheme = PartitioningScheme(3, 2)
        for index in range(50):
            partition = scheme.query_partition(f"query:{index}")
            assert 0 <= partition < 3
            assert partition == scheme.query_partition(f"query:{index}")

    def test_object_partition_in_range(self):
        scheme = PartitioningScheme(3, 2)
        for index in range(50):
            assert 0 <= scheme.object_partition(f"doc-{index}") < 2

    def test_node_index_layout(self):
        scheme = PartitioningScheme(2, 3)
        indexes = {
            scheme.node_index(qp, op) for qp in range(2) for op in range(3)
        }
        assert indexes == set(range(6))

    def test_node_index_bounds_checked(self):
        scheme = PartitioningScheme(2, 2)
        with pytest.raises(ConfigurationError):
            scheme.node_index(2, 0)
        with pytest.raises(ConfigurationError):
            scheme.node_index(0, 2)


class TestRouting:
    def test_query_routed_to_one_node_per_object_partition(self):
        scheme = PartitioningScheme(3, 4)
        nodes = scheme.nodes_for_query("query:abc")
        assert len(nodes) == 4
        assert len(set(nodes)) == 4

    def test_document_routed_to_one_node_per_query_partition(self):
        scheme = PartitioningScheme(3, 4)
        nodes = scheme.nodes_for_document("doc-1")
        assert len(nodes) == 3
        assert len(set(nodes)) == 3

    def test_query_and_document_paths_intersect_exactly_once(self):
        """Every (query, record) pair is evaluated by exactly one node."""
        scheme = PartitioningScheme(3, 4)
        for query_index in range(10):
            for document_index in range(10):
                query_nodes = set(scheme.nodes_for_query(f"query:{query_index}"))
                document_nodes = set(scheme.nodes_for_document(f"doc-{document_index}"))
                assert len(query_nodes & document_nodes) == 1

    def test_member_filter_partitions_documents(self):
        scheme = PartitioningScheme(2, 3)
        filters = [scheme.member_filter(op) for op in range(3)]
        for index in range(100):
            document_id = f"doc-{index}"
            responsible = [f(document_id) for f in filters]
            assert sum(responsible) == 1

    def test_load_spreads_over_partitions(self):
        scheme = PartitioningScheme(4, 4)
        partitions = {scheme.query_partition(f"query:{index}") for index in range(200)}
        assert partitions == {0, 1, 2, 3}
