"""The InvaliDB candidate index: maintenance, superset safety, golden parity.

The index must never change *what* is notified, only how many states are
touched per event.  The golden test replays a fixed mixed workload and pins
the serialized notification stream's SHA-256, captured from the pre-index
full-scan implementation -- indexed and legacy modes must both reproduce it
byte for byte.
"""

from __future__ import annotations

import hashlib
import json
import random

import pytest

from repro.db.changestream import ChangeEvent, OperationType
from repro.db.query import Query
from repro.invalidb.cluster import InvaliDBCluster
from repro.invalidb.index import QueryStateIndex, equality_predicate
from repro.invalidb.matching import QueryMatchState

#: SHA-256 of the golden scenario's serialized notification stream, captured
#: from the pre-index implementation (a full scan over every state).
GOLDEN_STREAM_SHA256 = "11c00ff1929a54b7d7a45b2a792f949d7c7c036ea98a1194b436d201cee935a0"
GOLDEN_STREAM_LENGTH = 429


def make_event(sequence, doc_id, after, before=None, collection="posts", operation=None):
    if operation is None:
        if after is None:
            operation = OperationType.DELETE
        elif before is None:
            operation = OperationType.INSERT
        else:
            operation = OperationType.UPDATE
    return ChangeEvent(
        sequence=sequence,
        operation=operation,
        collection=collection,
        document_id=doc_id,
        before=before,
        after=after,
        timestamp=float(sequence),
    )


def build_index(queries, use_index=True):
    index = QueryStateIndex(use_index)
    for query in queries:
        state = QueryMatchState(query)
        state.initialize([])
        index.register(query, state)
    return index


def candidate_keys(index, event):
    return [state.query_key for state in index.candidates(event)]


class TestEqualityPredicateExtraction:
    def test_literal_and_dollar_eq(self):
        assert equality_predicate(Query("posts", {"category": 3})) == ("category", 3)
        assert equality_predicate(Query("posts", {"category": {"$eq": 3}})) == (
            "category",
            3,
        )

    def test_first_sorted_indexable_field_wins(self):
        predicate = equality_predicate(Query("posts", {"b": 1, "a": 2}))
        assert predicate == ("a", 2)

    def test_rejects_unsafe_values_and_paths(self):
        assert equality_predicate(Query("posts", {"a": None})) is None
        assert equality_predicate(Query("posts", {"a": float("nan")})) is None
        assert equality_predicate(Query("posts", {"a": [1, 2]})) is None
        assert equality_predicate(Query("posts", {"a.b": 1})) is None
        assert equality_predicate(Query("posts", {"views": {"$gte": 3}})) is None
        assert (
            equality_predicate(Query("posts", {"$or": [{"a": 1}, {"b": 2}]})) is None
        )

    def test_conjunction_with_extra_operators_still_indexable(self):
        query = Query("posts", {"category": 2, "views": {"$gte": 10}})
        assert equality_predicate(query) == ("category", 2)


class TestCandidatePruning:
    def test_collection_pruning(self):
        queries = [Query("posts", {"views": {"$gte": 1}}), Query("users", {"age": {"$gte": 1}})]
        index = build_index(queries)
        event = make_event(1, "p1", {"_id": "p1", "views": 5})
        assert candidate_keys(index, event) == [queries[0].cache_key]

    def test_equality_pruning_on_after_image(self):
        queries = [Query("posts", {"category": value}) for value in range(5)]
        index = build_index(queries)
        event = make_event(1, "p1", {"_id": "p1", "category": 3})
        assert candidate_keys(index, event) == [queries[3].cache_key]

    def test_before_image_keeps_remove_candidates(self):
        """A doc leaving category 2 must still reach the category-2 query."""
        queries = [Query("posts", {"category": value}) for value in range(5)]
        index = build_index(queries)
        event = make_event(
            2,
            "p1",
            {"_id": "p1", "category": 4},
            before={"_id": "p1", "category": 2},
        )
        assert candidate_keys(index, event) == [
            queries[2].cache_key,
            queries[4].cache_key,
        ]

    def test_delete_uses_before_image(self):
        queries = [Query("posts", {"category": value}) for value in range(5)]
        index = build_index(queries)
        event = make_event(3, "p1", None, before={"_id": "p1", "category": 1})
        assert candidate_keys(index, event) == [queries[1].cache_key]

    def test_array_containment_lookup(self):
        query = Query("posts", {"tags": "example"})
        other = Query("posts", {"tags": "unrelated"})
        index = build_index([query, other])
        event = make_event(1, "p1", {"_id": "p1", "tags": ["x", "example"]})
        assert candidate_keys(index, event) == [query.cache_key]

    def test_non_indexable_queries_always_scanned(self):
        scan_query = Query("posts", {"$or": [{"category": 1}, {"views": {"$lt": 5}}]})
        eq_query = Query("posts", {"category": 9})
        index = build_index([scan_query, eq_query])
        event = make_event(1, "p1", {"_id": "p1", "category": 0, "views": 100})
        assert candidate_keys(index, event) == [scan_query.cache_key]

    def test_candidates_preserve_registration_order(self):
        scan_query = Query("posts", {"views": {"$gte": 0}})
        eq_first = Query("posts", {"category": 1})
        eq_second = Query("posts", {"category": 1, "views": {"$gte": 5}})
        index = build_index([eq_first, scan_query, eq_second])
        event = make_event(1, "p1", {"_id": "p1", "category": 1, "views": 10})
        assert candidate_keys(index, event) == [
            eq_first.cache_key,
            scan_query.cache_key,
            eq_second.cache_key,
        ]

    def test_missing_before_image_falls_back_to_collection_scan(self):
        """UPDATE without a before-image cannot be pruned by value safely."""
        queries = [Query("posts", {"category": value}) for value in range(3)]
        queries.append(Query("users", {"category": 0}))
        index = build_index(queries)
        event = make_event(
            1, "p1", {"_id": "p1", "category": 0}, operation=OperationType.UPDATE
        )
        assert candidate_keys(index, event) == [query.cache_key for query in queries[:3]]

    def test_legacy_mode_scans_everything(self):
        queries = [Query("posts", {"category": 1}), Query("users", {"plan": "pro"})]
        index = build_index(queries, use_index=False)
        event = make_event(1, "p1", {"_id": "p1", "category": 1})
        assert candidate_keys(index, event) == [query.cache_key for query in queries]


class TestIndexMaintenance:
    def test_deregister_removes_all_entries(self):
        query = Query("posts", {"category": 1})
        index = build_index([query])
        assert index.deregister(query.cache_key)
        assert not index.deregister(query.cache_key)
        assert len(index) == 0
        event = make_event(1, "p1", {"_id": "p1", "category": 1})
        assert index.candidates(event) == []
        assert index._eq_index == {}
        assert index._eq_fields == {}
        assert index._scan_bucket == {}
        assert index._placement == {}

    def test_reregistration_replaces_state_in_place(self):
        query = Query("posts", {"category": 1})
        index = build_index([query])
        replacement = QueryMatchState(query)
        replacement.initialize([])
        index.register(query, replacement)
        assert len(index) == 1
        assert index.get(query.cache_key) is replacement

    def test_reregistration_keeps_candidate_order_identical_to_scan(self):
        """In-place replacement must not reorder candidates vs the full scan."""
        queries = [
            Query("posts", {"views": {"$gte": 0}}),  # scan bucket
            Query("posts", {"category": 1}),  # eq index
            Query("posts", {"views": {"$lte": 100}}),  # scan bucket
            Query("posts", {"category": 1, "views": {"$gte": 5}}),  # eq index
        ]
        indexed = build_index(queries, use_index=True)
        scan = build_index(queries, use_index=False)
        for target in (indexed, scan):
            replacement = QueryMatchState(queries[0])
            replacement.initialize([])
            target.register(queries[0], replacement)
        event = make_event(1, "p1", {"_id": "p1", "category": 1, "views": 10})
        assert candidate_keys(indexed, event) == candidate_keys(scan, event)

    def test_cluster_register_deregister_keeps_index_consistent(self):
        cluster = InvaliDBCluster(matching_nodes=2)
        queries = [Query("posts", {"category": value}) for value in range(10)]
        for query in queries:
            cluster.register_query(query, [])
        for query in queries[:5]:
            assert cluster.deregister_query(query.cache_key)
        event = make_event(
            1, "p1", {"_id": "p1", "category": 7}, before={"_id": "p1", "category": 2}
        )
        notifications = cluster.process_event(event)
        assert [n.query_key for n in notifications] == [queries[7].cache_key]


def golden_queries():
    queries = []
    for category in range(8):
        queries.append(Query("posts", {"category": category}))
    queries.append(Query("posts", {"tags": "example"}))
    queries.append(Query("posts", {"views": {"$gte": 50}}))
    queries.append(Query("posts", {"$or": [{"category": 1}, {"views": {"$lt": 5}}]}))
    queries.append(Query("posts", {"category": {"$eq": 2}, "views": {"$gte": 10}}))
    queries.append(Query("posts", {"category": 3}, sort=[("views", -1)], limit=3))
    queries.append(Query("users", {"plan": "pro"}))
    queries.append(Query("users", {"plan": "free"}, sort=[("age", 1)], limit=2, offset=1))
    return queries


def golden_events(steps=160):
    rng = random.Random(1234)
    documents = {}
    events = []
    sequence = 0
    for step in range(steps):
        sequence += 1
        timestamp = float(step)
        if step % 11 == 0 and documents:
            doc_id = rng.choice(sorted(documents))
            collection, before = documents.pop(doc_id)
            events.append(
                ChangeEvent(
                    sequence,
                    OperationType.DELETE,
                    collection,
                    doc_id,
                    before,
                    None,
                    timestamp,
                )
            )
            continue
        collection = "posts" if rng.random() < 0.7 else "users"
        if collection == "posts":
            doc_id = f"p{rng.randrange(40)}"
            after = {
                "_id": doc_id,
                "category": rng.randrange(8),
                "views": rng.randrange(100),
                "tags": ["example"] if rng.random() < 0.3 else ["other"],
            }
        else:
            doc_id = f"u{rng.randrange(20)}"
            after = {
                "_id": doc_id,
                "plan": rng.choice(["pro", "free"]),
                "age": rng.randrange(70),
            }
        previous = documents.get(doc_id)
        if previous is None:
            events.append(
                ChangeEvent(
                    sequence,
                    OperationType.INSERT,
                    collection,
                    doc_id,
                    None,
                    after,
                    timestamp,
                )
            )
        else:
            events.append(
                ChangeEvent(
                    sequence,
                    OperationType.UPDATE,
                    collection,
                    doc_id,
                    previous[1],
                    after,
                    timestamp,
                )
            )
        documents[doc_id] = (collection, after)
    return events


def run_golden_stream(use_matching_index):
    cluster = InvaliDBCluster(matching_nodes=4, use_matching_index=use_matching_index)
    for query in golden_queries():
        cluster.register_query(query, [])
    stream = []
    for event in golden_events():
        for notification in cluster.process_event(event):
            stream.append(
                [
                    notification.query_key,
                    notification.type.value,
                    notification.document_id,
                    notification.timestamp,
                    notification.new_index,
                ]
            )
    return stream


class TestGoldenNotificationStream:
    @pytest.mark.parametrize("use_matching_index", [True, False])
    def test_stream_matches_pre_index_capture(self, use_matching_index):
        """Indexed and legacy modes replay the captured stream byte for byte."""
        stream = run_golden_stream(use_matching_index)
        assert len(stream) == GOLDEN_STREAM_LENGTH
        payload = json.dumps(stream, separators=(",", ":")).encode()
        assert hashlib.sha256(payload).hexdigest() == GOLDEN_STREAM_SHA256

    def test_indexed_mode_touches_fewer_states(self):
        def total_ops(use_matching_index):
            cluster = InvaliDBCluster(
                matching_nodes=4, use_matching_index=use_matching_index
            )
            for query in golden_queries():
                cluster.register_query(query, [])
            for event in golden_events():
                cluster.process_event(event)
            return sum(node.match_operations for node in cluster.nodes)

        assert total_ops(True) < total_ops(False)
