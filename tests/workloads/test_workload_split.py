"""Workload substream splitting for the process-parallel simulator.

``WorkloadGenerator.split`` / ``PhasedWorkloadGenerator.split`` derive
independent per-partition substreams from one master seed.  The substream
seed mapping and the resulting operation streams are pinned by hash: they
are part of the reproducibility contract of every partitioned experiment.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    DatasetSpec,
    PhasedWorkloadGenerator,
    WorkloadGenerator,
    WorkloadSpec,
    derive_substream_seed,
    generate_dataset,
    partition_share,
    split_workload_phases,
    split_workload_spec,
)

#: Pinned substream seeds -- the blake2b derivation must never change.
PINNED_SEEDS = {
    (11, "workload", 0, 2): 13980248284687342998,
    (11, "workload", 1, 2): 15845009434290678738,
    (42, "partition", 0, 2): 11951173877191880741,
    (42, "partition", 1, 2): 9589029186514247943,
    (11, "workload-phase", 0, 0, 2): 16415868372923283229,
}

#: sha256 of each substream's first 500 operations for the spec below.
GOLDEN_SUBSTREAMS = (
    "7cf04fb468547543e0533b68c90aefae4ada37dea3d124e45576756a72805870",
    "d48ce0e9df2b6a1b7dc662ff24464c937d9ca7aa8ec7228c5cd0e52d3f4adc63",
)

SPEC = dict(
    read_proportion=0.46,
    query_proportion=0.46,
    update_proportion=0.05,
    insert_proportion=0.02,
    delete_proportion=0.01,
    seed=11,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(
        DatasetSpec(num_tables=4, documents_per_table=100, queries_per_table=10)
    )


def serialise(operations) -> list:
    return [
        [
            operation.type.value,
            operation.collection,
            operation.document_id,
            operation.query.cache_key if operation.query else None,
            json.dumps(operation.payload, sort_keys=True, default=str)
            if operation.payload
            else None,
        ]
        for operation in operations
    ]


def fingerprint(operations) -> str:
    payload = json.dumps(serialise(operations), separators=(",", ":")).encode()
    return hashlib.sha256(payload).hexdigest()


class TestSubstreamSeeds:
    def test_derivation_is_pinned(self):
        for args, expected in PINNED_SEEDS.items():
            assert derive_substream_seed(*args) == expected

    def test_paths_and_seeds_disambiguate(self):
        seen = {
            derive_substream_seed(seed, tag, index, 4)
            for seed in (1, 2, 11)
            for tag in ("workload", "partition")
            for index in range(4)
        }
        assert len(seen) == 24  # no collisions across seeds, tags, indexes

    def test_split_spec_only_moves_the_seed(self):
        spec = WorkloadSpec(**SPEC)
        sub = split_workload_spec(spec, 1, 2)
        assert sub.seed == PINNED_SEEDS[(11, "workload", 1, 2)]
        assert {**sub.__dict__, "seed": spec.seed} == spec.__dict__


class TestPartitionShare:
    def test_shares_sum_to_total(self):
        for total in (0, 1, 7, 100, 801):
            for partitions in (1, 2, 3, 8):
                shares = [partition_share(total, p, partitions) for p in range(partitions)]
                assert sum(shares) == total
                # Remainder goes to the lowest ids: shares are non-increasing
                # and differ by at most one.
                assert shares == sorted(shares, reverse=True)
                assert max(shares) - min(shares) <= 1

    def test_bounds_are_validated(self):
        with pytest.raises(ConfigurationError):
            partition_share(10, 0, 0)
        with pytest.raises(ConfigurationError):
            partition_share(10, 2, 2)


class TestGeneratorSplit:
    def test_substreams_are_pinned(self, dataset):
        generator = WorkloadGenerator(WorkloadSpec(**SPEC), dataset)
        fingerprints = tuple(
            fingerprint(sub.next_operations(500)) for sub in generator.split(2)
        )
        assert fingerprints == GOLDEN_SUBSTREAMS

    def test_substreams_stay_inside_their_table_slice(self, dataset):
        generator = WorkloadGenerator(WorkloadSpec(**SPEC), dataset)
        for partition_id, sub in enumerate(generator.split(2)):
            allowed = set(sub.dataset.tables)
            assert allowed == {
                table
                for index, table in enumerate(dataset.tables)
                if index % 2 == partition_id
            }
            assert all(
                operation.collection in allowed for operation in sub.next_operations(300)
            )

    def test_split_does_not_disturb_the_parent_stream(self, dataset):
        reference = WorkloadGenerator(WorkloadSpec(**SPEC), dataset)
        want = serialise(reference.next_operations(200))
        split_then_sample = WorkloadGenerator(WorkloadSpec(**SPEC), dataset)
        split_then_sample.split(2)
        assert serialise(split_then_sample.next_operations(200)) == want

    def test_split_validates_worker_count(self, dataset):
        generator = WorkloadGenerator(WorkloadSpec(**SPEC), dataset)
        with pytest.raises(ConfigurationError):
            generator.split(0)


class TestPhasedSplit:
    def phases(self):
        return (
            (100, WorkloadSpec.read_heavy(seed=11)),
            (60, WorkloadSpec.with_update_rate(0.2, seed=11)),
        )

    def test_budgets_split_near_evenly(self):
        split = split_workload_phases(self.phases(), 0, 3)
        assert [operations for operations, _spec in split] == [34, 20]
        split = split_workload_phases(self.phases(), 2, 3)
        assert [operations for operations, _spec in split] == [33, 20]

    def test_phase_seeds_are_independent_per_partition_and_phase(self):
        seeds = {
            spec.seed
            for partition_id in range(2)
            for _operations, spec in split_workload_phases(self.phases(), partition_id, 2)
        }
        assert len(seeds) == 4

    def test_budget_smaller_than_partitions_is_rejected(self):
        with pytest.raises(ConfigurationError):
            split_workload_phases(((1, WorkloadSpec.read_heavy()),), 0, 2)

    def test_phased_generator_split_crosses_boundaries_consistently(self, dataset):
        generator = PhasedWorkloadGenerator(self.phases(), dataset)
        for sub in generator.split(2):
            budget = sub.phases[0][0]
            for _ in range(budget):
                sub.next_operation()
            assert sub.phase_index == 0  # boundary crossed lazily
            sub.next_operation()
            assert sub.phase_index == 1


class TestDatasetPartition:
    def test_slices_cover_and_do_not_overlap(self, dataset):
        slices = [dataset.partition(p, 2) for p in range(2)]
        tables = [table for part in slices for table in part.tables]
        assert sorted(tables) == sorted(dataset.tables)
        assert len(set(tables)) == len(tables)
        for part in slices:
            assert part.spec.num_tables == len(part.tables)
            for table in part.tables:
                assert part.documents[table] is dataset.documents[table]

    def test_every_partition_needs_a_table(self, dataset):
        with pytest.raises(ValueError):
            dataset.partition(0, len(dataset.tables) + 1)
        with pytest.raises(ValueError):
            dataset.partition(2, 2)
