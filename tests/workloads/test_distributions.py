"""Tests for the request distributions (Zipfian, uniform, hotspot)."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.workloads import HotspotGenerator, UniformGenerator, ZipfianGenerator


class TestUniformGenerator:
    def test_indexes_in_range(self):
        generator = UniformGenerator(100, random.Random(1))
        assert all(0 <= generator.next_index() < 100 for _ in range(1000))

    def test_roughly_uniform(self):
        generator = UniformGenerator(10, random.Random(1))
        counts = Counter(generator.next_index() for _ in range(10_000))
        assert max(counts.values()) < 2 * min(counts.values())

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            UniformGenerator(0)


class TestZipfianGenerator:
    def test_indexes_in_range(self):
        generator = ZipfianGenerator(1000, constant=0.99, rng=random.Random(2))
        assert all(0 <= generator.next_index() < 1000 for _ in range(2000))

    def test_skew_concentrates_mass_on_few_items(self):
        generator = ZipfianGenerator(1000, constant=0.99, rng=random.Random(3))
        counts = Counter(generator.next_index() for _ in range(20_000))
        top_10_share = sum(count for _item, count in counts.most_common(10)) / 20_000
        assert top_10_share > 0.25

    def test_higher_constant_is_more_skewed(self):
        def top_share(constant: float) -> float:
            generator = ZipfianGenerator(1000, constant=constant, rng=random.Random(4))
            counts = Counter(generator.next_index() for _ in range(20_000))
            return sum(count for _item, count in counts.most_common(10)) / 20_000

        assert top_share(0.99) > top_share(0.5)

    def test_unscrambled_prefers_low_ranks(self):
        generator = ZipfianGenerator(1000, constant=0.99, rng=random.Random(5), scrambled=False)
        counts = Counter(generator.next_index() for _ in range(20_000))
        assert counts.most_common(1)[0][0] == 0

    def test_scrambling_spreads_popular_items(self):
        generator = ZipfianGenerator(1000, constant=0.99, rng=random.Random(6), scrambled=True)
        counts = Counter(generator.next_index() for _ in range(20_000))
        most_common_items = [item for item, _count in counts.most_common(5)]
        assert most_common_items != [0, 1, 2, 3, 4]

    def test_constant_one_is_handled(self):
        generator = ZipfianGenerator(100, constant=1.0, rng=random.Random(7))
        assert 0 <= generator.next_index() < 100

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, constant=2.5)

    def test_deterministic_with_seeded_rng(self):
        first = ZipfianGenerator(100, rng=random.Random(8))
        second = ZipfianGenerator(100, rng=random.Random(8))
        assert [first.next_index() for _ in range(50)] == [second.next_index() for _ in range(50)]


class TestHotspotGenerator:
    def test_hot_set_receives_configured_share(self):
        generator = HotspotGenerator(1000, hot_fraction=0.1, hot_probability=0.9, rng=random.Random(9))
        samples = [generator.next_index() for _ in range(10_000)]
        hot_hits = sum(1 for index in samples if index < 100)
        assert hot_hits / 10_000 > 0.8

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HotspotGenerator(0)
        with pytest.raises(ValueError):
            HotspotGenerator(10, hot_fraction=0.0)
        with pytest.raises(ValueError):
            HotspotGenerator(10, hot_probability=1.5)
