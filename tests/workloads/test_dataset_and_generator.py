"""Tests for dataset generation and the YCSB-style operation stream."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.db import Database
from repro.errors import ConfigurationError
from repro.workloads import (
    DatasetSpec,
    Operation,
    OperationType,
    WorkloadGenerator,
    WorkloadSpec,
    generate_dataset,
)


@pytest.fixture(scope="module")
def small_dataset():
    return generate_dataset(DatasetSpec(num_tables=2, documents_per_table=300, queries_per_table=20))


class TestDatasetGeneration:
    def test_shape_matches_spec(self, small_dataset):
        assert len(small_dataset.tables) == 2
        assert small_dataset.document_count == 600
        assert small_dataset.query_count == 40

    def test_documents_have_required_fields(self, small_dataset):
        document = small_dataset.documents[small_dataset.tables[0]][0]
        assert {"_id", "title", "category", "tags", "views", "author", "body"} <= set(document)

    def test_queries_return_expected_average_result_size(self, small_dataset):
        database = Database()
        small_dataset.load_into(database)
        sizes = [len(database.find(query)) for query in small_dataset.all_queries()]
        average = sum(sizes) / len(sizes)
        assert 5 <= average <= 15  # spec targets ~10 documents per query

    def test_generation_is_deterministic(self):
        spec = DatasetSpec(num_tables=1, documents_per_table=50, queries_per_table=5, seed=3)
        assert generate_dataset(spec).documents == generate_dataset(spec).documents

    def test_load_into_creates_indexes(self, small_dataset):
        database = Database()
        small_dataset.load_into(database)
        assert "category" in database.collection(small_dataset.tables[0]).indexed_fields()

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            DatasetSpec(num_tables=0)
        with pytest.raises(ValueError):
            DatasetSpec(average_result_size=0)

    def test_total_counts(self):
        spec = DatasetSpec(num_tables=10, documents_per_table=10_000, queries_per_table=100)
        assert spec.total_documents == 100_000
        assert spec.total_queries == 1_000


class TestWorkloadSpec:
    def test_proportions_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(read_proportion=0.5, query_proportion=0.5, update_proportion=0.5)

    def test_read_heavy_profile(self):
        spec = WorkloadSpec.read_heavy()
        assert spec.update_proportion == pytest.approx(0.01)
        assert spec.read_proportion + spec.query_proportion == pytest.approx(0.99)

    def test_with_update_rate(self):
        spec = WorkloadSpec.with_update_rate(0.2)
        assert spec.update_proportion == pytest.approx(0.2)
        assert spec.read_proportion == pytest.approx(0.4)
        with pytest.raises(ConfigurationError):
            WorkloadSpec.with_update_rate(1.5)

    def test_negative_proportions_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(read_proportion=-0.1, query_proportion=1.1, update_proportion=0.0)


class TestWorkloadGenerator:
    def test_operation_mix_matches_proportions(self, small_dataset):
        spec = WorkloadSpec(
            read_proportion=0.6, query_proportion=0.3, update_proportion=0.1, seed=1
        )
        generator = WorkloadGenerator(spec, small_dataset)
        counts = Counter(operation.type for operation in generator.stream(5_000))
        assert counts[OperationType.READ] / 5_000 == pytest.approx(0.6, abs=0.05)
        assert counts[OperationType.QUERY] / 5_000 == pytest.approx(0.3, abs=0.05)
        assert counts[OperationType.UPDATE] / 5_000 == pytest.approx(0.1, abs=0.03)

    def test_operations_are_well_formed(self, small_dataset):
        generator = WorkloadGenerator(WorkloadSpec.read_heavy(), small_dataset)
        for operation in generator.stream(500):
            if operation.type == OperationType.QUERY:
                assert operation.query is not None
            else:
                assert operation.document_id is not None
            if operation.type in (OperationType.INSERT, OperationType.UPDATE):
                assert operation.payload is not None

    def test_insert_operations_have_unique_ids(self, small_dataset):
        spec = WorkloadSpec(
            read_proportion=0.0, query_proportion=0.0, update_proportion=0.0,
            insert_proportion=1.0, seed=5,
        )
        generator = WorkloadGenerator(spec, small_dataset)
        ids = [operation.document_id for operation in generator.stream(100)]
        assert len(set(ids)) == 100

    def test_updates_touch_category_sometimes(self, small_dataset):
        spec = WorkloadSpec(
            read_proportion=0.0, query_proportion=0.0, update_proportion=1.0, seed=2
        )
        generator = WorkloadGenerator(spec, small_dataset)
        payload_keys = [next(iter(op.payload)) for op in generator.stream(500)]
        assert "$set" in payload_keys and "$inc" in payload_keys

    def test_zipfian_targets_are_skewed(self, small_dataset):
        spec = WorkloadSpec(
            read_proportion=1.0, query_proportion=0.0, update_proportion=0.0,
            zipf_constant=0.99, seed=3,
        )
        generator = WorkloadGenerator(spec, small_dataset)
        counts = Counter(operation.document_id for operation in generator.stream(5_000))
        top_share = sum(count for _key, count in counts.most_common(30)) / 5_000
        assert top_share > 0.2

    def test_deterministic_given_seed(self, small_dataset):
        spec = WorkloadSpec.read_heavy(seed=9)
        first = WorkloadGenerator(spec, small_dataset).operations(100)
        second = WorkloadGenerator(spec, small_dataset).operations(100)
        assert [op.type for op in first] == [op.type for op in second]

    def test_stream_count_validation(self, small_dataset):
        generator = WorkloadGenerator(WorkloadSpec.read_heavy(), small_dataset)
        with pytest.raises(ValueError):
            list(generator.stream(-1))


class TestOperationValidation:
    def test_query_operation_requires_query(self):
        with pytest.raises(ValueError):
            Operation(OperationType.QUERY, "posts")

    def test_record_operation_requires_id(self):
        with pytest.raises(ValueError):
            Operation(OperationType.READ, "posts")

    def test_update_requires_payload(self):
        with pytest.raises(ValueError):
            Operation(OperationType.UPDATE, "posts", document_id="p1")

    def test_is_write_classification(self):
        read = Operation(OperationType.READ, "posts", document_id="p1")
        update = Operation(
            OperationType.UPDATE, "posts", document_id="p1", payload={"$set": {"a": 1}}
        )
        assert not read.is_write
        assert update.is_write
