"""Golden tests for batched workload sampling (the PR 4 overhaul).

``WorkloadGenerator.next_operations`` emits operations in chunks for the
simulator's hot loop.  These tests pin that the chunked sampler is a pure
speed-up: the operation stream is bit-identical to repeated
``next_operation`` calls, and its fingerprint matches the stream the
pre-overhaul generator produced (recorded at commit 2326f94).
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.workloads import DatasetSpec, WorkloadGenerator, WorkloadSpec, generate_dataset

#: sha256 over the serialised first 2,000 operations of the spec below, as
#: produced by the pre-overhaul per-operation sampler.
GOLDEN_STREAM_SHA256 = "36bd2a78a55819d53432600ff4575645e88ba242028d6fcf95be1ba69227a7e7"

GOLDEN_SPEC = dict(
    read_proportion=0.46,
    query_proportion=0.46,
    update_proportion=0.05,
    insert_proportion=0.02,
    delete_proportion=0.01,
    seed=11,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(DatasetSpec(num_tables=2, documents_per_table=100, queries_per_table=10))


def serialise(operations) -> list:
    return [
        [
            operation.type.value,
            operation.collection,
            operation.document_id,
            operation.query.cache_key if operation.query else None,
            json.dumps(operation.payload, sort_keys=True, default=str)
            if operation.payload
            else None,
        ]
        for operation in operations
    ]


def fingerprint(operations) -> str:
    payload = json.dumps(serialise(operations), separators=(",", ":")).encode()
    return hashlib.sha256(payload).hexdigest()


class TestBatchedGeneration:
    def test_golden_stream_fingerprint(self, dataset):
        """The seeded stream (all five operation types) is pinned by hash."""
        generator = WorkloadGenerator(WorkloadSpec(**GOLDEN_SPEC), dataset)
        assert fingerprint(generator.next_operations(2_000)) == GOLDEN_STREAM_SHA256

    def test_batched_equals_one_at_a_time(self, dataset):
        batched = WorkloadGenerator(WorkloadSpec(**GOLDEN_SPEC), dataset)
        single = WorkloadGenerator(WorkloadSpec(**GOLDEN_SPEC), dataset)
        want = serialise(single.next_operation() for _ in range(1_500))
        got = serialise(batched.next_operations(1_500))
        assert got == want

    def test_chunk_boundaries_do_not_change_the_stream(self, dataset):
        """Splitting the same draw count into uneven chunks is invisible."""
        one_shot = WorkloadGenerator(WorkloadSpec(**GOLDEN_SPEC), dataset)
        chunked = WorkloadGenerator(WorkloadSpec(**GOLDEN_SPEC), dataset)
        want = serialise(one_shot.next_operations(1_000))
        got = []
        for size in (1, 7, 250, 500, 242):
            got.extend(serialise(chunked.next_operations(size)))
        assert got == want

    def test_uniform_spec_batches_identically(self, dataset):
        spec = WorkloadSpec(**{**GOLDEN_SPEC, "uniform": True})
        batched = WorkloadGenerator(spec, dataset)
        single = WorkloadGenerator(spec, dataset)
        want = serialise(single.next_operation() for _ in range(600))
        assert serialise(batched.next_operations(600)) == want

    def test_zero_and_negative_counts(self, dataset):
        generator = WorkloadGenerator(WorkloadSpec(**GOLDEN_SPEC), dataset)
        assert generator.next_operations(0) == []
        with pytest.raises(ValueError):
            generator.next_operations(-1)

    def test_operations_and_stream_agree_with_the_batched_path(self, dataset):
        reference = WorkloadGenerator(WorkloadSpec(**GOLDEN_SPEC), dataset)
        want = serialise(reference.next_operations(700))
        via_operations = WorkloadGenerator(WorkloadSpec(**GOLDEN_SPEC), dataset)
        assert serialise(via_operations.operations(700)) == want
        via_stream = WorkloadGenerator(WorkloadSpec(**GOLDEN_SPEC), dataset)
        assert serialise(via_stream.stream(700)) == want

    def test_abandoned_stream_leaves_rng_where_consumed_ops_put_it(self, dataset):
        """stream() must stay lazy: breaking out early must not have sampled
        ahead, so the next operation continues the seeded sequence."""
        reference = WorkloadGenerator(WorkloadSpec(**GOLDEN_SPEC), dataset)
        want = serialise(reference.next_operations(11))
        abandoned = WorkloadGenerator(WorkloadSpec(**GOLDEN_SPEC), dataset)
        consumed = []
        for index, operation in enumerate(abandoned.stream(700)):
            consumed.append(operation)
            if index == 9:
                break
        consumed.append(abandoned.next_operation())
        assert serialise(consumed) == want
