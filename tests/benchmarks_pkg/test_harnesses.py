"""Smoke tests for the benchmark harnesses (full runs live in ``benchmarks/``)."""

from __future__ import annotations

import pytest

from repro.benchmarks import BenchmarkScale, PAPER_SCALE, SMALL_SCALE
from repro.benchmarks.figure1 import PageLoadModel, run_figure1
from repro.benchmarks.figure12 import exercise_matching, run_figure12
from repro.benchmarks.harness import ALL_MODES, run_mode
from repro.simulation.simulator import CachingMode


#: A deliberately tiny scale so harness smoke tests stay fast.
TINY_SCALE = BenchmarkScale(
    name="tiny",
    num_tables=2,
    documents_per_table=300,
    queries_per_table=20,
    connection_steps=[20, 40],
    num_clients=4,
    max_operations=1_500,
    duration=60.0,
    query_count_steps=[20, 40],
    document_count_steps=[300, 600],
    matching_nodes=2,
)


class TestScales:
    def test_small_and_paper_scales_are_consistent(self):
        for scale in (SMALL_SCALE, PAPER_SCALE):
            assert scale.connection_steps == sorted(scale.connection_steps)
            assert scale.dataset_spec().total_documents == (
                scale.num_tables * scale.documents_per_table
            )

    def test_dataset_spec_overrides(self):
        spec = SMALL_SCALE.dataset_spec(documents_per_table=10, queries_per_table=2, num_tables=1)
        assert spec.total_documents == 10
        assert spec.total_queries == 2

    def test_paper_scale_matches_section_6_1(self):
        assert PAPER_SCALE.num_tables == 10
        assert PAPER_SCALE.documents_per_table == 10_000
        assert PAPER_SCALE.queries_per_table == 100
        assert PAPER_SCALE.connection_steps[-1] == 3000


class TestRunMode:
    def test_produces_result_for_every_mode(self):
        for mode in ALL_MODES:
            result = run_mode(TINY_SCALE, mode, connections=20, max_operations=600)
            assert result.operations > 0
            assert result.mode is mode

    def test_quaestor_beats_uncached_even_at_tiny_scale(self):
        quaestor = run_mode(TINY_SCALE, CachingMode.QUAESTOR, connections=40, max_operations=1_200)
        uncached = run_mode(TINY_SCALE, CachingMode.UNCACHED, connections=40, max_operations=1_200)
        assert quaestor.throughput > uncached.throughput


class TestFigure1Harness:
    def test_report_covers_all_regions_and_providers(self):
        report = run_figure1()
        assert len(report.rows) == 4 * 5
        assert {row["provider"] for row in report.rows} == {
            "Baqend", "Kinvey", "Firebase", "Azure", "Parse",
        }

    def test_cdn_backed_provider_is_fastest_everywhere(self):
        report = run_figure1()
        for region in {row["region"] for row in report.rows}:
            rows = [row for row in report.rows if row["region"] == region]
            fastest = min(rows, key=lambda row: row["first_load_seconds"])
            assert fastest["provider"] == "Baqend"

    def test_origin_load_grows_with_distance(self):
        model = PageLoadModel()
        assert model.origin_backed_load(0.3) > model.origin_backed_load(0.03)
        assert model.cdn_backed_load(0.3) < model.origin_backed_load(0.3)


class TestFigure12Harness:
    def test_micro_exercise_produces_notifications(self):
        outcome = exercise_matching(matching_nodes=2, queries_per_node=10, events=200)
        assert outcome["notifications"] > 0
        assert outcome["total_match_operations"] > 0
        assert outcome["active_queries"] == 20

    def test_report_scales_linearly(self):
        report = run_figure12(node_counts=[1, 2], queries_per_node_micro=5, micro_events=100)
        by_nodes = {}
        for row in report.rows:
            by_nodes.setdefault(row["matching_nodes"], []).append(row["sustainable_throughput_ops"])
        for bound_index in range(3):
            assert by_nodes[2][bound_index] == pytest.approx(2 * by_nodes[1][bound_index])
