"""Unit tests for benchmark utility pieces (no full simulation runs)."""

from __future__ import annotations

import pytest

from repro.benchmarks.figure11 import RecordingTTLEstimator
from repro.benchmarks.figure8 import figure8_summary
from repro.core.consistency import ConsistencyLevel
from repro.simulation.simulator import CachingMode
from repro.ttl import QuaestorTTLEstimator


class TestRecordingEstimator:
    def test_records_paired_estimates_and_true_ttls(self):
        recorder = RecordingTTLEstimator(QuaestorTTLEstimator())
        estimate = recorder.estimate_query("query:q", ["record:posts/a"], now=0.0)
        recorder.estimate_query("query:never-invalidated", [], now=0.0)
        recorder.observe_query_invalidation("query:q", actual_ttl=12.5, timestamp=20.0)
        # Only the invalidated query contributes, and it contributes a pair.
        assert recorder.estimated_ttls == [estimate]
        assert recorder.true_ttls == [12.5]

    def test_unseen_query_invalidation_is_ignored(self):
        recorder = RecordingTTLEstimator(QuaestorTTLEstimator())
        recorder.observe_query_invalidation("query:unknown", actual_ttl=3.0, timestamp=1.0)
        assert recorder.estimated_ttls == []
        assert recorder.true_ttls == []

    def test_delegates_record_estimates(self):
        inner = QuaestorTTLEstimator()
        recorder = RecordingTTLEstimator(inner)
        recorder.observe_write("record:posts/a", timestamp=1.0)
        assert recorder.estimate_record("record:posts/a", now=2.0) == inner.estimate_record(
            "record:posts/a", now=2.0
        )
        # Record estimates are not part of the Figure 11 query-TTL comparison.
        assert recorder.estimated_ttls == []


class TestFigure8Summary:
    def test_speedup_factors(self):
        class _Result:
            def __init__(self, throughput: float) -> None:
                self.throughput = throughput

        results = {
            CachingMode.QUAESTOR.value: _Result(100_000.0),
            CachingMode.UNCACHED.value: _Result(10_000.0),
            CachingMode.EBF_ONLY.value: _Result(20_000.0),
            CachingMode.CDN_ONLY.value: _Result(60_000.0),
        }
        summary = figure8_summary(results)
        assert summary["speedup_vs_uncached"] == pytest.approx(10.0)
        assert summary["speedup_vs_ebf_only"] == pytest.approx(5.0)
        assert summary["speedup_vs_cdn_only"] == pytest.approx(100.0 / 60.0)


class TestConsistencyLevels:
    def test_strong_level_always_revalidates(self):
        assert ConsistencyLevel.STRONG.always_revalidates
        assert not ConsistencyLevel.DELTA_ATOMIC.always_revalidates
        assert not ConsistencyLevel.CAUSAL.always_revalidates

    def test_levels_are_string_valued(self):
        assert ConsistencyLevel("delta-atomic") is ConsistencyLevel.DELTA_ATOMIC
        assert ConsistencyLevel("causal") is ConsistencyLevel.CAUSAL
